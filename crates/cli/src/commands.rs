//! Subcommand implementations.

use crate::args::Args;
use casbn_bench::perfbase;
use casbn_core::{
    Filter, ForestFireFilter, ParallelChordalCommFilter, ParallelChordalNoCommFilter,
    ParallelRandomWalkFilter, RandomEdgeFilter, RandomNodeFilter, SequentialChordalFilter,
};
use casbn_expr::{DatasetPreset, ExpressionMatrix, NetworkParams};
use casbn_fuzz::{Execution, FuzzConfig};
use casbn_graph::io::{read_edge_list, write_edge_list};
use casbn_graph::{store as graph_store, Graph, PartitionKind};
use casbn_mcode::{mcode_cluster, store as mcode_store, Cluster, McodeParams};
use casbn_serve::{
    install_sigint_handler, parse_script, run_script, serve_session, serve_tcp, shutdown_flag,
    ServeEngine, SessionConfig, BATCH_MAX,
};
use casbn_store::io::{append_durable, save_atomic, write_atomic, RealFs, RetryPolicy};
use casbn_store::{is_store_bytes, SectionKind, Store, StoreWriter};
use casbn_stream::{read_replay, synthesize_replay, write_replay, StreamConfig, StreamDriver};

/// Help text. Kept in sync with the flags each subcommand actually parses;
/// `cli_help` tests assert every flag below is real and every parsed flag is
/// documented here.
pub const USAGE: &str = "\
casbn — chordal adaptive sampling for biological networks

USAGE:
  casbn generate --preset yng|mid|unt|cre [--scale F] [--out FILE]
                 [--metrics FILE|-]
  casbn filter   --in FILE --algo ALGO [--ranks N] [--partition block|rr|bfs]
                 [--seed N] [--out FILE] [--metrics FILE|-]
  casbn cluster  --in FILE [--min-score F] [--min-size N] [--json]
                 [--metrics FILE|-]
  casbn stats    --in FILE [--centrality] [--metrics FILE|-]
  casbn compare  --original FILE --filtered FILE [--metrics FILE|-]
  casbn bench    [--scale F] [--repeats N] [--out FILE] [--baseline FILE]
                 [--threshold F] [--wall] [--summary FILE] [--metrics FILE|-]
  casbn stream   (--preset P [--scale F] [--samples N] | --in FILE)
                 [--batch N] [--min-rho F] [--min-score F] [--json]
                 [--out FILE] [--replay-out FILE] [--expect-checksum N]
                 [--checkpoint FILE] [--resume FILE [--degraded]]
                 [--windows N] [--io-retries N] [--metrics FILE|-]
  casbn serve    (--in FILE | --preset P [--scale F] [--samples N])
                 [--script FILE] [--listen ADDR] [--threads N] [--batch N]
                 [--checkpoint FILE] [--expect-checksum N] [--io-retries N]
                 [--metrics FILE|-]
  casbn pack     --in FILE --kind graph|replay|clusters --out FILE
  casbn inspect  --in FILE [--json] [--degraded] [--metrics FILE|-]
  casbn verify   --in FILE [--metrics FILE|-]
  casbn fuzz     [--target T|all] [--iters N] [--seed N] [--corpus DIR]
                 [--minimize FILE]
  casbn help

FLAGS:
  --preset     dataset preset calibrated to the paper's four networks
  --scale      dataset size fraction, 1.0 = full paper scale (default 1.0;
               `bench` defaults to 0.15)
  --in         input network as a whitespace `u v` edge list (for
               `stream`: a sample-major replay file); `.csbn` binary
               containers are auto-detected by their magic bytes on
               every --in (and on compare's --original/--filtered)
  --out        output edge-list file (default: stdout); for `bench`, the
               JSON baseline to write/merge (e.g. BENCH_pipeline.json);
               for `stream`, the final chordal network (default: none)
  --algo       sampling filter (see ALGO below)
  --ranks      simulated processors for parallel filters (default 1)
  --partition  vertex distribution: block | rr (round-robin) | bfs (default bfs)
  --seed       RNG seed; equal seeds give identical output (default 0)
  --min-score  MCODE minimum cluster score (default 3.0, the paper's cut)
  --min-size   MCODE minimum cluster size (default 4)
  --json       emit clusters as JSON instead of a table (for `inspect`:
               the container layout as JSON)
  --centrality also print degree/betweenness centrality (slow on big graphs)
  --metrics    write a JSON snapshot of the run's internal telemetry
               (counters, histograms, span timers) to FILE, or print a
               human-readable table to stderr with `-`; the snapshot's
               \"deterministic\" section is bit-identical across thread
               counts, wall-clock times live under \"wall\"
  --original   unfiltered network for `compare`
  --filtered   filtered network for `compare`
  --repeats    `bench` timing repetitions, minimum wall time kept (default 3)
  --baseline   prior `bench` JSON to diff against; deterministic regressions
               (simulated time, output checksums) fail the run
  --threshold  `bench` relative regression threshold (default 0.5 = +50%)
  --wall       make `bench` gate on wall-clock regressions too (off by
               default: wall time is machine-dependent)
  --summary    write a markdown before/after wall-time comparison table
               against --baseline to FILE (the CI job-summary artifact)
  --samples    `stream` sample count of a synthesized replay (default:
               the preset's native array count)
  --batch      `stream` samples ingested per window (default 2); for
               `serve`: queries buffered per batch dispatch (default 16)
  --min-rho    `stream` correlation retention threshold (default 0.95)
  --replay-out write the synthesized replay to FILE (sample-major rows,
               re-playable with `casbn stream --in FILE`)
  --expect-checksum
               fail (exit 1) unless the run's deterministic checksum
               matches N — the CI streaming smoke gate (for `serve
               --script`: the FNV checksum over the response bytes)
  --checkpoint `stream`: write a resumable .csbn checkpoint of the
               accumulators/network/chordal state to FILE after the run
               (appended in place when FILE is already a container);
               `serve`: write one durable checkpoint per ingested window
               and a final one at shutdown
  --resume     `stream`: restore state from a checkpoint FILE and
               continue the replay exactly where it stopped
  --windows    `stream`: ingest at most N windows this run (pair with
               --checkpoint to suspend a long replay mid-stream)
  --degraded   best-effort open of a damaged container: a torn tail
               falls back to the newest fully valid generation and
               checksum-failing sections are quarantined (`stream
               --resume` continues from what survives with a stderr
               warning; `inspect` reports the damage)
  --io-retries transient I/O (EINTR/EAGAIN) retry budget per write
               operation for this run's artifacts (default 4; retries
               are deterministic — counted in the io.retries metric,
               never wall-clock backoff)
  --kind       what `pack` reads from --in: graph (edge list), replay
               (sample-major matrix), clusters (cluster --json output)
  --script     `serve`: replay a query script (one query per line:
               neigh G | cluster G | rho U V | enrich G… | stats |
               ingest N) through an in-process session and print
               `responses N checksum C` — the deterministic client mode
  --listen     `serve`: accept concurrent read-only TCP sessions on ADDR
               (e.g. 127.0.0.1:7878) until SIGINT; a streaming source
               ingests concurrently, rotating snapshots per window
  --threads    `serve` worker threads per query batch (default 1; the
               response bytes are identical for any value)
  --target     `fuzz` input surface: edge-list | replay | csbn |
               csbn-lazy | csbn-append | csbn-crash | checkpoint-resume |
               csbn-serve | cli-argv | all (default all)
  --iters      `fuzz` iterations per target (default 1000)
  --corpus     `fuzz` corpus directory: DIR/<target>/ files replay as a
               regression suite, and new crashers are written back there
  --minimize   `fuzz`: shrink the failing input in FILE to a minimal
               crasher (needs a single --target); writes FILE.min

ALGO: chordal-seq | chordal-nocomm | chordal-comm | randomwalk |
      forestfire | randomnode | randomedge

`pack` converts text artifacts into .csbn containers; `inspect` prints a
container's section table; `verify` validates every checksum (exit 1 on
corruption). `stats` on a .csbn input reports the container metadata
alongside the graph statistics. `serve` holds the network, clusters and
rho/enrichment indices resident and answers queries over a
length-prefixed protocol (see `casbn serve --help`). `fuzz` runs the
deterministic structure-aware fuzzing and differential-oracle harness
over every input surface (see `casbn fuzz --help`).
";

/// `casbn bench --help` text (also asserted verbatim by the CLI snapshot
/// tests).
pub const BENCH_USAGE: &str = "\
casbn bench — pinned-seed perf baseline of the pipeline hot paths

Runs the named workloads (Pearson network build on the YNG and CRE
presets, sequential DSW, MCODE, the no-comm parallel chordal filter at
1/4/8 ranks, and the streaming pipeline: YNG replay batch ingest plus
incremental chordal delta maintenance) at a pinned scale and seed, then
optionally diffs the measurements against a committed baseline JSON.
Every workload record carries the deterministic telemetry counters of
one instrumented pass (context for baseline diffs — never a gate).

USAGE:
  casbn bench [--scale F] [--repeats N] [--out FILE] [--baseline FILE]
              [--threshold F] [--wall] [--summary FILE] [--metrics FILE|-]

FLAGS:
  --scale      dataset size fraction (default 0.15; CI smoke uses 0.02)
  --repeats    timing repetitions, minimum wall time kept (default 3)
  --out        baseline JSON to write; merged with the file's other
               scales if it already exists (e.g. BENCH_pipeline.json)
  --baseline   prior baseline JSON to diff against; exits 1 on regression
  --threshold  relative regression threshold (default 0.5 = +50%)
  --wall       gate on wall-clock regressions too (default: only the
               machine-independent simulated times and output checksums)
  --summary    write a markdown before/after wall-time comparison table
               against --baseline to FILE (uploaded by CI as the
               bench-smoke job-summary artifact)
  --metrics    write the whole run's telemetry snapshot to FILE as JSON
               (`-` prints a human table to stderr)
";

/// `casbn stream --help` text (also asserted verbatim by the CLI snapshot
/// tests).
pub const STREAM_USAGE: &str = "\
casbn stream — replay a microarray sample stream through the incremental
pipeline

Ingests samples in --batch N windows: each window updates the online
Welford/co-moment correlation accumulators, applies the resulting edge
deltas to the CSR-backed delta graph, maintains the chordal subgraph
incrementally (admissibility-tested inserts, amortized regional DSW
rebuilds), re-clusters with MCODE, and reports per-window churn, cluster
stability and simulated/wall latency. A deterministic checksum over the
integer window metrics ends the table (in --json mode it is a field of
the document, which stays pipe-clean for `jq`).

The run is suspendable: --checkpoint writes the driver's complete state
(Welford/co-moment accumulators bit-exact, delta-graph overlays,
incremental chordal subgraph and clock, window history) to a .csbn
container, and --resume restores it and continues the replay where it
stopped — a resumed run reproduces the uninterrupted run's windows and
final checksum exactly. Pair --windows N with --checkpoint to suspend a
long replay mid-stream.

USAGE:
  casbn stream (--preset yng|mid|unt|cre [--scale F] [--samples N] | --in FILE)
               [--batch N] [--min-rho F] [--min-score F] [--json]
               [--out FILE] [--replay-out FILE] [--expect-checksum N]
               [--checkpoint FILE] [--resume FILE [--degraded]]
               [--windows N] [--io-retries N] [--metrics FILE|-]

FLAGS:
  --preset     synthesize the replay from a dataset preset's calibrated
               generator (deterministic per preset/scale/samples)
  --scale      dataset size fraction of the synthesized replay (default 1.0)
  --samples    sample count of the synthesized replay (default: the
               preset's native array count)
  --in         read the replay from FILE instead (one sample per line,
               whitespace-separated expression values, `#` comments; a
               .csbn container holding a matrix section is auto-detected)
  --batch      samples ingested per window (default 2)
  --min-rho    correlation retention threshold (default 0.95; the p-value
               cut stays at the paper's 0.0005)
  --min-score  MCODE minimum cluster score (default 3.0)
  --json       emit the run summary as JSON instead of a table
  --out        write the final chordal network as an edge list
  --replay-out write the synthesized replay to FILE and continue
  --expect-checksum
               exit 1 unless the deterministic checksum matches N
  --checkpoint write a resumable .csbn checkpoint to FILE after the run.
               A fresh FILE is written atomically (tmp + fsync + rename);
               when FILE already holds a .csbn container the new state
               is appended *in place* as a durable generation — payloads
               and table are fsynced before the committing footer, so a
               crash at any write leaves the previous generation intact
  --resume     restore state from a checkpoint FILE and continue (the
               batch size and thresholds come from the checkpoint, so
               --batch/--min-rho/--min-score are rejected here)
  --degraded   with --resume: if FILE is torn or bit-rotted, fall back
               to its newest fully valid generation (stderr warning)
               instead of refusing to resume
  --windows    ingest at most N windows this run (default: no limit)
  --io-retries transient I/O (EINTR/EAGAIN) retry budget per write
               operation (default 4; deterministic, no wall-clock
               backoff — retries land in the io.retries metric)
  --metrics    write the run's telemetry snapshot to FILE as JSON
               (`-` prints a human table to stderr); the summary also
               reports per-window wall p50/p95/max

Exit codes: 0 ok, 1 checksum mismatch, 2 usage/configuration error.
";

/// `casbn fuzz --help` text (also asserted verbatim by the CLI snapshot
/// tests).
pub const FUZZ_USAGE: &str = "\
casbn fuzz — deterministic structure-aware fuzzing of every input surface

Each target wraps one untrusted-input surface (whitespace edge lists,
sample-major replay files, .csbn containers, stream checkpoints, CLI
argv vectors) behind a panic-catching, allocation-capped driver and a
differential oracle: inputs that parse must re-encode bit-identically,
and a checkpoint that resumes must replay to the uninterrupted run's
exact checksum. Campaigns are bit-deterministic — the per-target trace
checksum is reproducible from --seed alone, and any crasher reproduces
from its (target, seed, iteration) coordinates.

USAGE:
  casbn fuzz [--target T|all] [--iters N] [--seed N] [--corpus DIR]
             [--minimize FILE]

FLAGS:
  --target     one of edge-list | replay | csbn | csbn-lazy |
               csbn-append | csbn-crash | checkpoint-resume |
               csbn-serve | cli-argv, or all (default all)
  --iters      fuzzing iterations per target (default 1000)
  --seed       campaign seed; equal seeds give identical iteration
               traces (default 0)
  --corpus     corpus directory: every file under DIR/<target>/ is
               replayed first as a crasher-regression suite, and new
               crashers found this run are written back there
  --minimize   shrink the failing input in FILE to a minimal crasher
               that fails the same way (needs a single --target);
               writes FILE.min

Exit codes: 0 clean, 1 crashes found, 2 usage error.
";

/// `casbn serve --help` text (also asserted verbatim by the CLI snapshot
/// tests).
pub const SERVE_USAGE: &str = "\
casbn serve — resident concurrent query daemon over the pipeline

Holds the current network, its MCODE clusters and the rho/enrichment
indices resident, and answers queries over a length-prefixed
request/response protocol: gene neighborhood, cluster membership, rho
lookup, gene-set enrichment, snapshot statistics. Decoded queries are
grouped into batches of up to 16 and dispatched onto a worker pool; the
response bytes are identical for any --threads value.

A --preset (or .csbn matrix) source streams: `ingest N` requests advance
the replay window by window, each boundary atomically publishing a new
immutable snapshot — concurrent readers keep answering from the
snapshot they hold, never observing a half-published state — and, with
--checkpoint, a durable recovery point. A packed graph or edge-list
source serves a static epoch-0 snapshot and rejects ingest.

Modes (in precedence order):
  --script FILE  deterministic client: replay a query script through an
                 in-process session, print `responses N checksum C`
  --listen ADDR  daemon: accept concurrent read-only TCP sessions until
                 SIGINT; a streaming source ingests all windows
                 concurrently, rotating snapshots as readers query
  (neither)      pipe mode: one session over stdin/stdout (the
                 deterministic test transport); SIGINT or EOF drains
                 in-flight batches and writes a final checkpoint

USAGE:
  casbn serve (--in FILE | --preset yng|mid|unt|cre [--scale F] [--samples N])
              [--script FILE] [--listen ADDR] [--threads N] [--batch N]
              [--checkpoint FILE] [--expect-checksum N] [--io-retries N]
              [--metrics FILE|-]

FLAGS:
  --in         a .csbn container (a graph section serves static, a
               matrix section serves streaming) or an edge-list file
  --preset     synthesize a streaming replay from a dataset preset
  --scale      dataset size fraction of the synthesized replay (default 1.0)
  --samples    sample count of the synthesized replay (default: the
               preset's native array count)
  --script     query script FILE: one query per line — neigh G |
               cluster G | rho U V | enrich G G… | stats | ingest N;
               `#` comments and blank lines are skipped
  --listen     TCP listen address, e.g. 127.0.0.1:7878
  --threads    worker threads per batch dispatch (default 1)
  --batch      queries buffered per dispatch, 1..=16 (default 16)
  --checkpoint durable .csbn checkpoint FILE: written after every
               ingested window and at shutdown (atomic replace first,
               then appended in place as durable generations);
               `casbn stream --resume FILE` and `casbn serve --in`
               accept the result
  --expect-checksum
               with --script: exit 1 unless the FNV-1a checksum over
               the response bytes matches N — the CI serve-smoke gate
  --io-retries transient I/O retry budget per write (default 4)
  --metrics    write the run's telemetry snapshot (serve.requests,
               serve.batch_size, serve.snapshot_rotations, per-query
               sim-cost counters) to FILE as JSON, `-` for stderr table

Exit codes: 0 ok, 1 checksum mismatch, 2 usage/configuration error.
";

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// Route an artifact write through the crash-safe I/O layer: the bytes
/// land in `path.tmp`, are fsynced, renamed over `path`, and the parent
/// directory entry is fsynced — a kill at any instant leaves either the
/// old file or the complete new one on disk, never a torn mix. Every
/// CLI artifact write funnels through here (or through the store's
/// [`save_atomic`]/[`append_durable`] for `.csbn` containers).
fn write_artifact(path: &str, bytes: &[u8], policy: RetryPolicy) -> Result<(), String> {
    write_atomic(&RealFs, path, bytes, policy).map_err(|e| format!("write {path}: {e}"))
}

/// Does `path` already hold a `.csbn` container? Peeks at the magic
/// bytes only — the durable append path reads the rest itself.
fn is_csbn_file(path: &str) -> bool {
    use std::io::Read as _;
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).is_ok() && is_store_bytes(&magic)
}

/// Arm telemetry when `--metrics <file|->` is present: reset and enable
/// the process-wide registry so the final snapshot covers exactly this
/// run. Returns the destination for [`metrics_finish`].
fn metrics_begin(args: &Args) -> Option<&str> {
    let dest = args.get("metrics");
    if dest.is_some() {
        casbn_obs::reset();
        casbn_obs::set_enabled(true);
    }
    dest
}

/// Emit the armed snapshot: `-` renders the human table on stderr (so
/// stdout stays machine-readable), anything else writes the full JSON
/// document — deterministic and wall sections — to the named file.
fn metrics_finish(dest: Option<&str>) -> Result<(), String> {
    let Some(dest) = dest else { return Ok(()) };
    let snap = casbn_obs::snapshot();
    casbn_obs::set_enabled(false);
    if dest == "-" {
        eprint!("{}", snap.render_table());
    } else {
        write_artifact(dest, snap.to_json().as_bytes(), RetryPolicy::default())?;
        eprintln!("wrote metrics {dest}");
    }
    Ok(())
}

/// Read a network from `path`, auto-detecting the `.csbn` binary
/// container by its magic bytes; anything else parses as a whitespace
/// edge list. Every graph-consuming subcommand (`filter`, `cluster`,
/// `stats`, `compare`) accepts either format transparently.
/// `on_container` runs on a successfully parsed container before the
/// graph section is decoded (`stats` interposes its metadata report
/// here); the single dispatch body keeps the format routing in one
/// place.
fn load_with(path: &str, on_container: impl FnOnce(&Store<'_>, usize)) -> Result<Graph, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("open {path}: {e}"))?;
    if is_store_bytes(&bytes) {
        // lazy open: the header/table validate up front in O(header),
        // and only the sections actually decoded get checksummed — a
        // corrupt graph payload still fails typed on first access
        let store = Store::open_lazy(&bytes).map_err(|e| format!("{path}: {e}"))?;
        on_container(&store, bytes.len());
        graph_store::load_first_graph(&store).map_err(|e| format!("{path}: {e}"))
    } else {
        let (g, _) = read_edge_list(&bytes[..], 0).map_err(|e| e.to_string())?;
        Ok(g)
    }
}

fn load(path: &str) -> Result<Graph, String> {
    load_with(path, |_, _| {})
}

fn save(g: &Graph, path: Option<&str>, header: &str) -> Result<(), String> {
    match path {
        Some(p) => {
            let mut buf = Vec::new();
            write_edge_list(g, &mut buf, Some(header)).map_err(|e| e.to_string())?;
            write_artifact(p, &buf, RetryPolicy::default())
        }
        None => {
            write_edge_list(g, std::io::stdout().lock(), Some(header)).map_err(|e| e.to_string())
        }
    }
}

/// `casbn generate` — build a preset correlation network.
pub fn generate(argv: &[String]) -> i32 {
    let run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        let metrics = metrics_begin(&args);
        let preset = match args.require("preset")? {
            "yng" => DatasetPreset::Yng,
            "mid" => DatasetPreset::Mid,
            "unt" => DatasetPreset::Unt,
            "cre" => DatasetPreset::Cre,
            other => return Err(format!("unknown preset {other}")),
        };
        let scale: f64 = args.get_or("scale", 1.0)?;
        let ds = if (scale - 1.0).abs() < 1e-12 {
            preset.build()
        } else {
            preset.build_scaled(scale)
        };
        eprintln!(
            "{}: {} genes, {} edges ({} planted modules)",
            ds.name,
            ds.network.n(),
            ds.network.m(),
            ds.modules.len()
        );
        save(
            &ds.network,
            args.get("out"),
            &format!("{} correlation network (rho >= 0.95)", ds.name),
        )?;
        metrics_finish(metrics)
    };
    run().map(|_| 0).unwrap_or_else(|e| fail(&e))
}

/// `casbn filter` — apply a sampling filter to an edge-list network.
pub fn filter(argv: &[String]) -> i32 {
    let run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        let metrics = metrics_begin(&args);
        let g = load(args.require("in")?)?;
        let ranks: usize = args.get_or("ranks", 1)?;
        let seed: u64 = args.get_or("seed", 0)?;
        let part = match args.get("partition").unwrap_or("bfs") {
            "block" => PartitionKind::Block,
            "rr" => PartitionKind::RoundRobin,
            "bfs" => PartitionKind::BfsBlock,
            other => return Err(format!("unknown partition {other}")),
        };
        let algo = args.require("algo")?;
        let out = match algo {
            "chordal-seq" => SequentialChordalFilter::new().filter(&g, seed),
            "chordal-nocomm" => ParallelChordalNoCommFilter::new(ranks, part).filter(&g, seed),
            "chordal-comm" => ParallelChordalCommFilter::new(ranks, part).filter(&g, seed),
            "randomwalk" => ParallelRandomWalkFilter::new(ranks, part).filter(&g, seed),
            "forestfire" => ForestFireFilter::default().filter(&g, seed),
            "randomnode" => RandomNodeFilter::default().filter(&g, seed),
            "randomedge" => RandomEdgeFilter::default().filter(&g, seed),
            other => return Err(format!("unknown algorithm {other}")),
        };
        eprintln!(
            "{}: {} -> {} edges ({:.1}% retained, noise estimate {:.1}%); \
             borders {} dups {} msgs {} sim {:.3} ms",
            algo,
            out.stats.original_edges,
            out.stats.retained_edges,
            100.0 * out.retention(),
            100.0 * out.noise_estimate(),
            out.stats.border_edges,
            out.stats.duplicate_border_edges,
            out.stats.messages,
            out.stats.sim_makespan * 1e3,
        );
        save(&out.graph, args.get("out"), &format!("filtered by {algo}"))?;
        metrics_finish(metrics)
    };
    run().map(|_| 0).unwrap_or_else(|e| fail(&e))
}

/// `casbn cluster` — MCODE clusters of an edge-list network.
pub fn cluster(argv: &[String]) -> i32 {
    let run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        let metrics = metrics_begin(&args);
        let g = load(args.require("in")?)?;
        let params = McodeParams {
            min_score: args.get_or("min-score", 3.0)?,
            min_size: args.get_or("min-size", 4)?,
            ..Default::default()
        };
        let clusters = mcode_cluster(&g, &params);
        if args.has("json") {
            println!(
                "{}",
                serde_json::to_string_pretty(&clusters).map_err(|e| e.to_string())?
            );
        } else {
            println!(
                "{} clusters (score >= {})",
                clusters.len(),
                params.min_score
            );
            for (i, c) in clusters.iter().enumerate() {
                println!(
                    "#{:<3} score {:>6.2}  size {:>4}  density {:>5.2}  seed {}",
                    i + 1,
                    c.score,
                    c.size(),
                    c.density(),
                    c.seed
                );
            }
        }
        metrics_finish(metrics)
    };
    run().map(|_| 0).unwrap_or_else(|e| fail(&e))
}

/// Render a parsed container's metadata block: version, creator, and
/// the per-section kind/tag/size/checksum table. `inspect` prints it on
/// stdout as its report; `stats` prints it on stderr as a diagnostic
/// preamble so the statistics stay alone on stdout.
fn container_metadata(store: &Store<'_>, file_len: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "container       .csbn v{} (creator \"{}\", {} bytes)",
        store.version(),
        store.creator(),
        file_len
    );
    if store.is_appended() {
        let _ = writeln!(
            out,
            "layout          appended (generation {})",
            store.generation()
        );
    } else {
        let _ = writeln!(out, "layout          base");
    }
    if let Some(keep) = store.recovered_len() {
        let _ = writeln!(
            out,
            "degraded        torn tail: {keep} of {file_len} bytes valid ({} ignored)",
            file_len - keep
        );
    }
    if store.quarantined_count() > 0 {
        let _ = writeln!(
            out,
            "degraded        {} checksum-failing section(s) quarantined",
            store.quarantined_count()
        );
    }
    if store.is_lazy() {
        let _ = writeln!(
            out,
            "payloads        {} of {} verified (lazy open; `casbn verify` sweeps all)",
            store.sections_verified(),
            store.sections().len()
        );
    }
    let _ = writeln!(out, "sections        {}", store.sections().len());
    for (i, s) in store.sections().iter().enumerate() {
        let _ = writeln!(
            out,
            "  [{i}] {:<18} tag {:<4} {:>10} bytes  checksum {:#018x}{}",
            SectionKind::name_of(s.kind),
            s.tag,
            s.len,
            s.checksum,
            if store.section_quarantined(i) {
                "  QUARANTINED"
            } else {
                ""
            }
        );
    }
    out
}

/// Machine-readable `inspect --json` document, emitted with the
/// telemetry crate's JSON writer so the layout report and the metrics
/// snapshots share one formatting discipline. Checksums are hex strings
/// because u64 values exceed the exact-integer range of JSON doubles.
fn container_json(store: &Store<'_>, file_len: usize) -> String {
    let mut w = casbn_obs::json::JsonWriter::new();
    w.begin_object();
    w.key("version");
    w.value_u64(1);
    w.key("container");
    w.begin_object();
    w.key("format_version");
    w.value_u64(u64::from(store.version()));
    w.key("creator");
    w.value_str(store.creator());
    w.key("bytes");
    w.value_u64(file_len as u64);
    w.key("layout");
    w.value_str(if store.is_appended() {
        "appended"
    } else {
        "base"
    });
    w.key("generation");
    w.value_u64(store.generation());
    w.key("lazy");
    w.value_bool(store.is_lazy());
    w.key("degraded");
    w.value_bool(store.is_degraded());
    if let Some(keep) = store.recovered_len() {
        w.key("recovered_bytes");
        w.value_u64(keep as u64);
    }
    w.key("sections");
    w.begin_array();
    for (i, s) in store.sections().iter().enumerate() {
        w.begin_object();
        w.key("index");
        w.value_u64(i as u64);
        w.key("kind");
        w.value_str(SectionKind::name_of(s.kind));
        w.key("tag");
        w.value_u64(u64::from(s.tag));
        w.key("len");
        w.value_u64(s.len as u64);
        w.key("checksum");
        w.value_str(&format!("{:#018x}", s.checksum));
        w.key("verified");
        w.value_bool(store.section_verified(i));
        w.key("quarantined");
        w.value_bool(store.section_quarantined(i));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_object();
    w.finish()
}

/// `casbn stats` — structural statistics of a network. On a `.csbn`
/// input the container metadata (section sizes, checksums, creator
/// version) is reported on stderr alongside the graph statistics, so
/// stdout stays parseable regardless of the input format.
pub fn stats(argv: &[String]) -> i32 {
    let run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        let metrics = metrics_begin(&args);
        let g = load_with(args.require("in")?, |store, len| {
            eprint!("{}", container_metadata(store, len))
        })?;
        let (_, comps) = casbn_graph::algo::connected_components(&g);
        let tri = casbn_graph::algo::total_triangles(&g);
        let census = casbn_graph::algo::cycle_census(&g);
        println!("vertices        {}", g.n());
        println!("edges           {}", g.m());
        println!("density         {:.6}", g.density());
        println!("max degree      {}", g.max_degree());
        println!("components      {comps}");
        println!("triangles       {tri}");
        println!("indep. cycles   {}", census.independent_cycles);
        println!("tri-free edges  {}", census.triangle_free_edges);
        println!("chordal         {}", casbn_chordal::is_chordal(&g));
        if args.has("centrality") {
            let deg = casbn_graph::centrality::degree_centrality(&g);
            let bet = casbn_graph::centrality::betweenness_centrality(&g);
            let mut top: Vec<usize> = (0..g.n()).collect();
            top.sort_by(|&a, &b| bet[b].partial_cmp(&bet[a]).unwrap());
            println!("top betweenness vertices:");
            for &v in top.iter().take(10) {
                println!(
                    "  v{:<8} betweenness {:>10.1}  degree-centrality {:.4}",
                    v, bet[v], deg[v]
                );
            }
        }
        metrics_finish(metrics)
    };
    run().map(|_| 0).unwrap_or_else(|e| fail(&e))
}

/// `casbn bench` — run the pinned perf-baseline workloads and optionally
/// diff against a committed baseline JSON. Exit codes: 0 ok, 1 regression,
/// 2 usage/configuration error.
pub fn bench(argv: &[String]) -> i32 {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{BENCH_USAGE}");
        return 0;
    }
    let mut regressed = false;
    let mut run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        // a typo'd or value-less flag here would silently disable the
        // regression gate (e.g. `--baseline` without a file) — reject
        args.reject_unknown(
            &[
                "scale",
                "repeats",
                "out",
                "baseline",
                "threshold",
                "summary",
                "metrics",
            ],
            &["wall"],
        )?;
        let metrics = metrics_begin(&args);
        let scale: f64 = args.get_or("scale", perfbase::DEFAULT_SCALE)?;
        let repeats: usize = args.get_or("repeats", perfbase::DEFAULT_REPEATS)?;
        let threshold: f64 = args.get_or("threshold", perfbase::DEFAULT_THRESHOLD)?;
        if !scale.is_finite() || scale <= 0.0 || !threshold.is_finite() || threshold < 0.0 {
            return Err("need --scale > 0 and --threshold >= 0".into());
        }
        if args.get("summary").is_some() && args.get("baseline").is_none() {
            return Err("--summary needs --baseline to compare against".into());
        }
        eprintln!("running perf baseline at scale {scale} ({repeats} repeats)…");
        let suite = perfbase::run_suite(scale, repeats);
        // diagnostics: the timing table and diff report are for the
        // human watching the run, stdout stays free for machine output
        eprintln!(
            "{:<16} {:>12} {:>12} {:>10}",
            "workload", "wall ms", "sim ms", "checksum"
        );
        for r in &suite.results {
            eprintln!(
                "{:<16} {:>12.3} {:>12.3} {:>10}",
                r.name,
                r.wall_seconds * 1e3,
                r.sim_seconds * 1e3,
                r.checksum
            );
        }
        if let Some(path) = args.get("baseline") {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let base: perfbase::PerfBaseline =
                serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
            let report = perfbase::diff(&base, &suite, threshold, args.has("wall"));
            eprint!("{}", report.render());
            if let Some(md_path) = args.get("summary") {
                let md = perfbase::render_markdown(&base, &suite);
                write_artifact(md_path, md.as_bytes(), RetryPolicy::default())?;
                eprintln!("wrote {md_path}");
            }
            if report.compared == 0 {
                return Err(format!("baseline {path} has no suite at scale {scale}"));
            }
            regressed = report.is_regression();
        }
        if let Some(out) = args.get("out") {
            // an absent file starts a fresh baseline, but an existing file
            // that fails to parse must error — silently replacing it would
            // destroy the other scales' committed suites
            let existing: perfbase::PerfBaseline = match std::fs::read_to_string(out) {
                Ok(text) => serde_json::from_str(&text).map_err(|e| {
                    format!("existing baseline {out} is unreadable ({e}); refusing to overwrite")
                })?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
                Err(e) => return Err(format!("read {out}: {e}")),
            };
            let merged = perfbase::merge(existing, suite);
            let json = serde_json::to_string_pretty(&merged).map_err(|e| e.to_string())?;
            write_artifact(out, (json + "\n").as_bytes(), RetryPolicy::default())?;
            eprintln!("wrote {out}");
        }
        metrics_finish(metrics)
    };
    match run() {
        Err(e) => fail(&e),
        Ok(()) if regressed => 1,
        Ok(()) => 0,
    }
}

/// `casbn stream` — replay a sample stream through the incremental
/// pipeline (online correlation → delta graph → incremental chordal →
/// MCODE). Exit codes: 0 ok, 1 checksum mismatch, 2 usage error.
pub fn stream(argv: &[String]) -> i32 {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{STREAM_USAGE}");
        return 0;
    }
    let mut checksum_mismatch = false;
    let mut run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        // a typo'd flag here could silently drop the checksum gate
        args.reject_unknown(
            &[
                "preset",
                "scale",
                "samples",
                "in",
                "batch",
                "min-rho",
                "min-score",
                "out",
                "replay-out",
                "expect-checksum",
                "checkpoint",
                "resume",
                "windows",
                "io-retries",
                "metrics",
            ],
            &["json", "degraded"],
        )?;
        let metrics = metrics_begin(&args);
        // per-operation transient-I/O retry budget for every artifact
        // this run writes (checkpoints, edge lists, replays)
        let policy = RetryPolicy::new(args.get_or("io-retries", 4)?);
        let resume_path = args.get("resume");
        if args.has("degraded") && resume_path.is_none() {
            return Err("--degraded only applies when resuming (--resume FILE)".into());
        }
        if resume_path.is_some() {
            // the checkpoint carries the run configuration; a silently
            // overridden batch size or threshold would diverge from the
            // interrupted run while claiming to continue it
            for flag in ["batch", "min-rho", "min-score"] {
                if args.get(flag).is_some() {
                    return Err(format!("--{flag} comes from the checkpoint when resuming"));
                }
            }
        }
        let batch: usize = args.get_or("batch", 2)?;
        let min_rho: f64 = args.get_or("min-rho", NetworkParams::default().min_rho)?;
        if batch == 0 || !(0.0..=1.0).contains(&min_rho) {
            return Err("need --batch > 0 and 0 <= --min-rho <= 1".into());
        }
        let max_windows: usize = args.get_or("windows", usize::MAX)?;
        if max_windows == 0 {
            return Err("need --windows > 0".into());
        }

        // replay source: a file, or a preset-synthesized stream
        let matrix = match (args.get("in"), args.get("preset")) {
            (Some(_), Some(_)) => {
                return Err("--in and --preset are mutually exclusive".into());
            }
            (Some(path), None) => {
                // preset-only knobs must not be silently ignored — a user
                // who believes they rescaled the replay would pin a
                // checksum for a different run than they think
                for flag in ["scale", "samples"] {
                    if args.get(flag).is_some() {
                        return Err(format!(
                            "--{flag} only applies to --preset replays, not --in files"
                        ));
                    }
                }
                let bytes = std::fs::read(path).map_err(|e| format!("open {path}: {e}"))?;
                if is_store_bytes(&bytes) {
                    let store = Store::parse(&bytes).map_err(|e| format!("{path}: {e}"))?;
                    casbn_expr::store::load_first_matrix(&store)
                        .map_err(|e| format!("{path}: {e}"))?
                } else {
                    read_replay(&bytes[..]).map_err(|e| format!("parse {path}: {e}"))?
                }
            }
            (None, Some(preset)) => {
                let preset = match preset {
                    "yng" => DatasetPreset::Yng,
                    "mid" => DatasetPreset::Mid,
                    "unt" => DatasetPreset::Unt,
                    "cre" => DatasetPreset::Cre,
                    other => return Err(format!("unknown preset {other}")),
                };
                let scale: f64 = args.get_or("scale", 1.0)?;
                if !scale.is_finite() || scale <= 0.0 {
                    return Err("need --scale > 0".into());
                }
                let samples = match args.get("samples") {
                    Some(s) => Some(
                        s.parse::<usize>()
                            .map_err(|_| format!("invalid --samples: {s}"))?,
                    ),
                    None => None,
                };
                synthesize_replay(preset, scale, samples)
            }
            (None, None) => return Err("need --in FILE or --preset".into()),
        };
        if let Some(path) = args.get("replay-out") {
            let mut buf = Vec::new();
            write_replay(
                &matrix,
                &mut buf,
                Some(&format!(
                    "replay: {} genes x {} samples",
                    matrix.genes(),
                    matrix.samples()
                )),
            )
            .map_err(|e| format!("write {path}: {e}"))?;
            write_artifact(path, &buf, policy)?;
            eprintln!("wrote replay {path}");
        }

        // drive window by window so the final chordal graph stays
        // available for --out and the driver state for --checkpoint
        let mut driver = match resume_path {
            Some(ckpath) => {
                let ckbytes = std::fs::read(ckpath).map_err(|e| format!("open {ckpath}: {e}"))?;
                if !is_store_bytes(&ckbytes) {
                    return Err(format!("{ckpath} is not a .csbn checkpoint"));
                }
                let store = if args.has("degraded") {
                    // degraded open: a torn or bit-rotted checkpoint
                    // falls back to its newest fully valid generation
                    // (checksum-failing sections are quarantined) so an
                    // interrupted run can still continue from the last
                    // committed state
                    let s = Store::open_degraded(&ckbytes).map_err(|e| format!("{ckpath}: {e}"))?;
                    if let Some(keep) = s.recovered_len() {
                        eprintln!(
                            "warning: {ckpath} is damaged; resuming from generation {} \
                             ({} of {} bytes, {} trailing bytes ignored)",
                            s.generation(),
                            keep,
                            ckbytes.len(),
                            ckbytes.len() - keep
                        );
                    }
                    if s.quarantined_count() > 0 {
                        eprintln!(
                            "warning: {ckpath}: {} checksum-failing section(s) quarantined",
                            s.quarantined_count()
                        );
                    }
                    s
                } else {
                    // lazy open: resume touches every section it reads,
                    // so corruption still fails typed, without an
                    // up-front sweep over superseded generations
                    Store::open_lazy(&ckbytes).map_err(|e| format!("{ckpath}: {e}"))?
                };
                let d = StreamDriver::resume_from(&store).map_err(|e| format!("{ckpath}: {e}"))?;
                if d.genes() != matrix.genes() {
                    return Err(format!(
                        "checkpoint holds {} genes but the replay has {}",
                        d.genes(),
                        matrix.genes()
                    ));
                }
                if d.samples_ingested() > matrix.samples() {
                    return Err(format!(
                        "checkpoint is {} samples in but the replay holds only {}",
                        d.samples_ingested(),
                        matrix.samples()
                    ));
                }
                d
            }
            None => StreamDriver::new(
                matrix.genes(),
                StreamConfig {
                    batch,
                    network: NetworkParams {
                        min_rho,
                        ..Default::default()
                    },
                    mcode: McodeParams {
                        min_score: args.get_or("min-score", 3.0)?,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            ),
        };
        let batch = driver.config().batch;
        eprintln!(
            "streaming {} genes x {} samples in windows of {batch}…",
            matrix.genes(),
            matrix.samples()
        );
        if driver.samples_ingested() > 0 {
            eprintln!(
                "resumed at sample {} (after window {})",
                driver.samples_ingested(),
                driver.windows().len()
            );
        }
        let mut lo = driver.samples_ingested();
        let mut ran = 0usize;
        while lo < matrix.samples() && ran < max_windows {
            let hi = (lo + batch).min(matrix.samples());
            driver.ingest_window(&matrix.columns(lo, hi));
            lo = hi;
            ran += 1;
        }
        if let Some(path) = args.get("checkpoint") {
            // when the target already holds a .csbn container the new
            // state is appended *in place* as a durable generation —
            // only the suffix is written, payloads and table are
            // fsynced before the committing footer, and earlier
            // generations survive as a bit-exact prefix (a torn tail
            // from an earlier crash is truncated away first). Anything
            // else is atomically replaced with a fresh base-layout
            // container. Either way the sections stream straight from
            // the writer; the container is never materialized twice.
            let w = driver
                .checkpoint_writer()
                .map_err(|e| format!("checkpoint: {e}"))?;
            let existing = is_csbn_file(path);
            if existing {
                let out = append_durable(&RealFs, path, &w, policy)
                    .map_err(|e| format!("append checkpoint {path}: {e}"))?;
                if out.recovered_bytes > 0 {
                    eprintln!(
                        "warning: {path} had a torn tail; dropped {} byte(s) before appending",
                        out.recovered_bytes
                    );
                }
            } else {
                save_atomic(&RealFs, path, &w, policy).map_err(|e| format!("write {path}: {e}"))?;
            }
            eprintln!(
                "wrote checkpoint {path} ({} samples ingested{})",
                driver.samples_ingested(),
                if existing { ", appended" } else { "" }
            );
        }
        let chordal = driver.chordal().clone();
        let summary = driver.finish();

        if args.has("json") {
            println!(
                "{}",
                serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
            );
        } else {
            // the per-window table is progress diagnostics: stderr, so
            // stdout carries only the machine-checkable checksum line
            eprintln!(
                "{:<4} {:>7} {:>6} {:>6} {:>7} {:>8} {:>9} {:>10} {:>11} {:>12} {:>9}",
                "win",
                "samples",
                "+edges",
                "-edges",
                "net",
                "chordal",
                "clusters",
                "stability",
                "ingest ms",
                "chordal ms",
                "wall ms"
            );
            for w in &summary.windows {
                eprintln!(
                    "{:<4} {:>7} {:>6} {:>6} {:>7} {:>8} {:>9} {:>10.3} {:>11.3} {:>12.4} {:>9.3}",
                    w.window,
                    w.samples_seen,
                    w.inserts,
                    w.removes,
                    w.network_edges,
                    w.chordal_edges,
                    w.clusters,
                    w.stability,
                    w.sim_ingest * 1e3,
                    w.sim_chordal * 1e3,
                    w.wall.as_secs_f64() * 1e3,
                );
            }
            eprintln!(
                "total churn {} over {} windows",
                summary.total_churn(),
                summary.windows.len()
            );
            eprintln!(
                "window wall p50 {:.3} ms  p95 {:.3} ms  max {:.3} ms",
                summary.wall_p50_nanos as f64 / 1e6,
                summary.wall_p95_nanos as f64 / 1e6,
                summary.wall_max_nanos as f64 / 1e6,
            );
            // in JSON mode the checksum is a field of the document — a
            // trailer there would break `… --json | jq`
            println!("checksum {}", summary.checksum);
        }

        if let Some(path) = args.get("out") {
            let mut buf = Vec::new();
            write_edge_list(&chordal, &mut buf, Some("incremental chordal subgraph"))
                .map_err(|e| e.to_string())?;
            write_artifact(path, &buf, policy)?;
            eprintln!("wrote {path}");
        }
        if let Some(expect) = args.get("expect-checksum") {
            let expect: u64 = expect
                .parse()
                .map_err(|_| format!("invalid --expect-checksum: {expect}"))?;
            if expect != summary.checksum {
                eprintln!(
                    "checksum mismatch: expected {expect}, got {}",
                    summary.checksum
                );
                checksum_mismatch = true;
            }
        }
        metrics_finish(metrics)
    };
    match run() {
        Err(e) => fail(&e),
        Ok(()) if checksum_mismatch => 1,
        Ok(()) => 0,
    }
}

/// `casbn serve` — resident concurrent query daemon over the pipeline
/// (see [`SERVE_USAGE`] for the protocol and mode reference).
/// Exit codes: 0 ok, 1 checksum mismatch, 2 usage/configuration error.
pub fn serve(argv: &[String]) -> i32 {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{SERVE_USAGE}");
        return 0;
    }
    let mut checksum_mismatch = false;
    let mut run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        // a typo'd flag here could silently drop the checksum gate
        args.reject_unknown(
            &[
                "in",
                "preset",
                "scale",
                "samples",
                "script",
                "listen",
                "threads",
                "batch",
                "checkpoint",
                "expect-checksum",
                "io-retries",
                "metrics",
            ],
            &[],
        )?;
        let metrics = metrics_begin(&args);
        let policy = RetryPolicy::new(args.get_or("io-retries", 4)?);
        let threads: usize = args.get_or("threads", 1)?;
        let batch: usize = args.get_or("batch", BATCH_MAX)?;
        if threads == 0 || batch == 0 || batch > BATCH_MAX {
            return Err(format!(
                "need --threads > 0 and 1 <= --batch <= {BATCH_MAX}"
            ));
        }
        let cfg = SessionConfig {
            threads,
            batch_max: batch,
        };
        if args.get("expect-checksum").is_some() && args.get("script").is_none() {
            return Err("--expect-checksum gates a --script run".into());
        }

        // source → engine: a .csbn graph section (or edge list) serves a
        // static snapshot; a matrix section or --preset replay streams
        let mut engine = match (args.get("in"), args.get("preset")) {
            (Some(_), Some(_)) => {
                return Err("--in and --preset are mutually exclusive".into());
            }
            (Some(path), None) => {
                for flag in ["scale", "samples"] {
                    if args.get(flag).is_some() {
                        return Err(format!(
                            "--{flag} only applies to --preset sources, not --in files"
                        ));
                    }
                }
                let bytes = std::fs::read(path).map_err(|e| format!("open {path}: {e}"))?;
                if is_store_bytes(&bytes) {
                    let store = Store::open_lazy(&bytes).map_err(|e| format!("{path}: {e}"))?;
                    match graph_store::load_first_graph(&store) {
                        Ok(g) => ServeEngine::from_graph(g, &McodeParams::default()),
                        Err(graph_err) => {
                            let m = casbn_expr::store::load_first_matrix(&store).map_err(|_| {
                                format!("{path}: no servable graph or matrix section ({graph_err})")
                            })?;
                            ServeEngine::from_replay(m, StreamConfig::default())
                        }
                    }
                } else {
                    let (g, _) =
                        read_edge_list(&bytes[..], 0).map_err(|e| format!("{path}: {e}"))?;
                    ServeEngine::from_graph(g, &McodeParams::default())
                }
            }
            (None, Some(preset)) => {
                let preset = match preset {
                    "yng" => DatasetPreset::Yng,
                    "mid" => DatasetPreset::Mid,
                    "unt" => DatasetPreset::Unt,
                    "cre" => DatasetPreset::Cre,
                    other => return Err(format!("unknown preset {other}")),
                };
                let scale: f64 = args.get_or("scale", 1.0)?;
                if !scale.is_finite() || scale <= 0.0 {
                    return Err("need --scale > 0".into());
                }
                let samples = match args.get("samples") {
                    Some(s) => Some(
                        s.parse::<usize>()
                            .map_err(|_| format!("invalid --samples: {s}"))?,
                    ),
                    None => None,
                };
                ServeEngine::from_replay(
                    synthesize_replay(preset, scale, samples),
                    StreamConfig::default(),
                )
            }
            (None, None) => return Err("need --in FILE or --preset".into()),
        };

        if let Some(path) = args.get("checkpoint") {
            if !engine.can_ingest() {
                return Err(
                    "--checkpoint needs a streaming source (a static artifact has no \
                     stream state to checkpoint)"
                        .into(),
                );
            }
            // same durability discipline as `casbn stream --checkpoint`:
            // a fresh FILE is written atomically, an existing container
            // gains durable in-place generations — one per window
            // boundary plus the final shutdown checkpoint
            let path = path.to_string();
            engine.set_checkpoint_sink(Box::new(move |w| {
                if is_csbn_file(&path) {
                    append_durable(&RealFs, &path, w, policy)
                        .map(drop)
                        .map_err(|e| format!("append checkpoint {path}: {e}"))
                } else {
                    save_atomic(&RealFs, &path, w, policy)
                        .map_err(|e| format!("write checkpoint {path}: {e}"))
                }
            }));
        }

        {
            let snap = engine.snapshot();
            eprintln!(
                "serving epoch {}: {} genes, {} network edges, {} clusters{}",
                snap.epoch(),
                snap.network().n(),
                snap.network().m(),
                snap.clusters().len(),
                if engine.can_ingest() {
                    format!(", {} window(s) ingestable", engine.remaining_windows())
                } else {
                    " (static)".to_string()
                },
            );
        }

        if let Some(path) = args.get("script") {
            // deterministic client mode: the in-process session the CI
            // serve-smoke gate and the determinism suite replay
            let text = std::fs::read_to_string(path).map_err(|e| format!("open {path}: {e}"))?;
            let script = parse_script(&text).map_err(|e| format!("{path}: {e}"))?;
            let (report, _) = run_script(&mut engine, &script, &cfg)
                .map_err(|e| format!("script session: {e}"))?;
            engine.final_checkpoint()?;
            println!(
                "responses {} checksum {}",
                report.requests, report.responses_checksum
            );
            if let Some(expect) = args.get("expect-checksum") {
                let expect: u64 = expect
                    .parse()
                    .map_err(|_| format!("invalid --expect-checksum: {expect}"))?;
                if expect != report.responses_checksum {
                    eprintln!(
                        "checksum mismatch: expected {expect}, got {}",
                        report.responses_checksum
                    );
                    checksum_mismatch = true;
                }
            }
        } else if let Some(addr) = args.get("listen") {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
            install_sigint_handler();
            eprintln!("listening on {addr} (SIGINT to stop)");
            // the writer thread ingests the whole stream while the TCP
            // sessions read — every window boundary rotates the shared
            // snapshot without blocking either side
            let registry = engine.registry();
            let sessions = std::thread::scope(|scope| -> Result<u64, String> {
                let writer = scope.spawn(move || -> Result<(), String> {
                    let n = engine.remaining_windows();
                    if n > 0 {
                        let (run, epoch) = engine.ingest_windows(n)?;
                        eprintln!("ingested {run} window(s); snapshot epoch {epoch}");
                    }
                    engine.final_checkpoint()?;
                    Ok(())
                });
                let sessions = serve_tcp(registry, listener, &cfg, shutdown_flag())
                    .map_err(|e| format!("serve: {e}"))?;
                writer.join().expect("writer thread panicked")?;
                Ok(sessions)
            })?;
            eprintln!("served {sessions} session(s)");
        } else {
            // pipe mode: one full (writer) session over stdin/stdout
            install_sigint_handler();
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let report = serve_session(
                &mut engine,
                stdin.lock(),
                stdout.lock(),
                &cfg,
                shutdown_flag(),
            )
            .map_err(|e| format!("session: {e}"))?;
            engine.final_checkpoint()?;
            eprintln!(
                "session over: {} request(s) in {} batch(es), checksum {}{}",
                report.requests,
                report.batches,
                report.responses_checksum,
                if report.drained_on_shutdown {
                    " (drained on shutdown)"
                } else {
                    ""
                }
            );
        }
        metrics_finish(metrics)
    };
    match run() {
        Err(e) => fail(&e),
        Ok(()) if checksum_mismatch => 1,
        Ok(()) => 0,
    }
}

/// `casbn pack` — convert a text artifact (edge-list graph, sample-major
/// replay, or `cluster --json` output) into a `.csbn` container.
pub fn pack(argv: &[String]) -> i32 {
    let run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        args.reject_unknown(&["in", "kind", "out"], &[])?;
        let input = args.require("in")?;
        let out = args.require("out")?;
        let kind = args.require("kind")?;
        let bytes = std::fs::read(input).map_err(|e| format!("open {input}: {e}"))?;
        if is_store_bytes(&bytes) {
            return Err(format!("{input} is already a .csbn container"));
        }
        let mut w = StoreWriter::new();
        match kind {
            "graph" => {
                let (g, _) = read_edge_list(&bytes[..], 0).map_err(|e| e.to_string())?;
                graph_store::add_graph(&mut w, 0, &g);
                eprintln!("packed graph: {} vertices, {} edges", g.n(), g.m());
            }
            "replay" => {
                let m: ExpressionMatrix =
                    read_replay(&bytes[..]).map_err(|e| format!("parse {input}: {e}"))?;
                casbn_expr::store::add_matrix(&mut w, 0, &m);
                eprintln!(
                    "packed replay: {} genes x {} samples",
                    m.genes(),
                    m.samples()
                );
            }
            "clusters" => {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|_| format!("{input} is not UTF-8 cluster JSON"))?;
                let cs: Vec<Cluster> =
                    serde_json::from_str(text).map_err(|e| format!("parse {input}: {e}"))?;
                mcode_store::add_clusters(&mut w, 0, &cs);
                eprintln!("packed {} clusters", cs.len());
            }
            other => {
                return Err(format!(
                    "unknown --kind {other} (expected graph | replay | clusters)"
                ))
            }
        }
        w.save(out).map_err(|e| format!("write {out}: {e}"))?;
        eprintln!("wrote {out}");
        Ok(())
    };
    run().map(|_| 0).unwrap_or_else(|e| fail(&e))
}

/// `casbn inspect` — print a container's header and section table
/// (`--json` for the machine-readable layout document). Opens lazily,
/// so the cost is O(header + table) regardless of payload size; payload
/// checksums are deferred (`casbn verify` sweeps them).
/// Exit codes: 0 ok, 1 structurally corrupt container, 2 usage error.
pub fn inspect(argv: &[String]) -> i32 {
    container_report(argv, true)
}

/// `casbn verify` — validate a container end to end (magic, version,
/// endianness, header and per-section checksums, padding). Exit codes:
/// 0 clean, 1 corrupt, 2 usage error.
pub fn verify(argv: &[String]) -> i32 {
    container_report(argv, false)
}

/// Shared body of `inspect`/`verify`. `verify` runs the eager
/// [`Store::parse`] (full checksum sweep); `inspect` uses
/// [`Store::open_lazy`] so printing the table stays O(header + table).
fn container_report(argv: &[String], table: bool) -> i32 {
    let mut corrupt = false;
    let mut run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        if table {
            args.reject_unknown(&["in", "metrics"], &["json", "degraded"])?;
        } else {
            args.reject_unknown(&["in", "metrics"], &[])?;
        }
        let metrics = metrics_begin(&args);
        let path = args.require("in")?;
        let bytes = std::fs::read(path).map_err(|e| format!("open {path}: {e}"))?;
        let opened = if table && args.has("degraded") {
            // best-effort open: a torn tail resolves to the newest
            // fully valid generation and checksum-failing sections are
            // quarantined — the report then says exactly what survives
            Store::open_degraded(&bytes)
        } else if table {
            Store::open_lazy(&bytes)
        } else {
            Store::parse(&bytes)
        };
        match opened {
            Ok(store) => {
                if table && args.has("json") {
                    print!("{}", container_json(&store, bytes.len()));
                } else if table {
                    print!("{}", container_metadata(&store, bytes.len()));
                } else {
                    println!(
                        "ok: {} sections, {} bytes, all checksums verified",
                        store.sections().len(),
                        bytes.len()
                    );
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                corrupt = true;
            }
        }
        metrics_finish(metrics)
    };
    match run() {
        Err(e) => fail(&e),
        Ok(()) if corrupt => 1,
        Ok(()) => 0,
    }
}

/// Parse a full `casbn` argv vector (subcommand plus flags) exactly as
/// the real subcommands would — same flag tables, same typed value
/// parses — without executing anything or touching the filesystem.
/// This is the driver the fuzzing harness's `cli-argv` target injects:
/// it must return `Ok`/`Err`, never panic, on arbitrary argv vectors.
pub fn fuzz_argv_check(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Ok(()); // bare `casbn` prints usage
    };
    let (valued, switches): (&[&str], &[&str]) = match cmd.as_str() {
        "generate" => (&["preset", "scale", "out", "metrics"], &[]),
        "filter" => (
            &["in", "algo", "ranks", "partition", "seed", "out", "metrics"],
            &[],
        ),
        "cluster" => (&["in", "min-score", "min-size", "metrics"], &["json"]),
        "stats" => (&["in", "metrics"], &["centrality"]),
        "compare" => (&["original", "filtered", "metrics"], &[]),
        "bench" => (
            &[
                "scale",
                "repeats",
                "out",
                "baseline",
                "threshold",
                "summary",
                "metrics",
            ],
            &["wall"],
        ),
        "stream" => (
            &[
                "preset",
                "scale",
                "samples",
                "in",
                "batch",
                "min-rho",
                "min-score",
                "out",
                "replay-out",
                "expect-checksum",
                "checkpoint",
                "resume",
                "windows",
                "io-retries",
                "metrics",
            ],
            &["json", "degraded"],
        ),
        "serve" => (
            &[
                "in",
                "preset",
                "scale",
                "samples",
                "script",
                "listen",
                "threads",
                "batch",
                "checkpoint",
                "expect-checksum",
                "io-retries",
                "metrics",
            ],
            &[],
        ),
        "pack" => (&["in", "kind", "out"], &[]),
        "inspect" => (&["in", "metrics"], &["json", "degraded"]),
        "verify" => (&["in", "metrics"], &[]),
        "fuzz" => (&["target", "iters", "seed", "corpus", "minimize"], &[]),
        "help" | "--help" | "-h" => return Ok(()),
        other => return Err(format!("unknown subcommand: {other}")),
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(()); // help short-circuits before parsing everywhere
    }
    let args = Args::parse(rest)?;
    args.reject_unknown(valued, switches)?;
    // the same typed value parses the real subcommands perform (absent
    // flags fall through to the default, so one list serves them all)
    for key in ["scale", "min-rho", "min-score", "threshold"] {
        let _: f64 = args.get_or(key, 0.0)?;
    }
    for key in [
        "ranks", "repeats", "min-size", "samples", "batch", "windows", "threads",
    ] {
        let _: usize = args.get_or(key, 1)?;
    }
    for key in ["seed", "iters", "expect-checksum"] {
        let _: u64 = args.get_or(key, 0)?;
    }
    let _: u32 = args.get_or("io-retries", 4)?;
    if let Some(p) = args.get("preset") {
        if !matches!(p, "yng" | "mid" | "unt" | "cre") {
            return Err(format!("unknown preset {p}"));
        }
    }
    if let Some(p) = args.get("partition") {
        if !matches!(p, "block" | "rr" | "bfs") {
            return Err(format!("unknown partition {p}"));
        }
    }
    if let Some(k) = args.get("kind") {
        if !matches!(k, "graph" | "replay" | "clusters") {
            return Err(format!(
                "unknown --kind {k} (expected graph | replay | clusters)"
            ));
        }
    }
    Ok(())
}

/// Load every file under one target's corpus directory, sorted by file
/// name so the replay order (and any failure report) is deterministic.
/// A missing directory is an empty corpus, not an error — targets gain
/// corpus entries independently.
fn read_corpus_dir(dir: &str) -> Result<Vec<(String, Vec<u8>)>, String> {
    let mut entries = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(format!("read {dir}: {e}")),
    };
    for entry in rd {
        let entry = entry.map_err(|e| format!("read {dir}: {e}"))?;
        let path = entry.path();
        if path.is_file() {
            let bytes =
                std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            entries.push((entry.file_name().to_string_lossy().into_owned(), bytes));
        }
    }
    entries.sort();
    Ok(entries)
}

/// `casbn fuzz` — run the deterministic fuzzing and differential-oracle
/// harness. Exit codes: 0 clean, 1 crashes found, 2 usage error.
pub fn fuzz(argv: &[String]) -> i32 {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{FUZZ_USAGE}");
        return 0;
    }
    let mut found = false;
    let mut run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        // a typo'd flag would silently fuzz the wrong campaign — reject
        args.reject_unknown(&["target", "iters", "seed", "corpus", "minimize"], &[])?;
        let mut targets = casbn_fuzz::all_targets(fuzz_argv_check);
        if let Some(name) = args.get("target") {
            if name != "all" {
                targets.retain(|t| t.name() == name);
                if targets.is_empty() {
                    return Err(format!(
                        "unknown --target {name} (expected all | {})",
                        casbn_fuzz::TARGET_NAMES.join(" | ")
                    ));
                }
            }
        }
        let cfg = FuzzConfig {
            iters: args.get_or("iters", 1000)?,
            seed: args.get_or("seed", 0)?,
            ..Default::default()
        };

        if let Some(path) = args.get("minimize") {
            let [target] = &mut targets[..] else {
                return Err("--minimize needs a single --target to run the input against".into());
            };
            let input = std::fs::read(path).map_err(|e| format!("open {path}: {e}"))?;
            let min = casbn_fuzz::minimize(target.as_mut(), &input, cfg.max_alloc);
            match casbn_fuzz::execute_one(target.as_mut(), &min, cfg.max_alloc) {
                Execution::Failed(kind, msg) => {
                    let out = format!("{path}.min");
                    write_artifact(&out, &min, RetryPolicy::default())?;
                    println!(
                        "{}: {} bytes -> {} bytes ({}: {msg})",
                        target.name(),
                        input.len(),
                        min.len(),
                        kind.name()
                    );
                    eprintln!("wrote {out}");
                }
                Execution::Clean(_) => {
                    return Err(format!(
                        "{path} does not fail target {}; nothing to minimize",
                        target.name()
                    ));
                }
            }
            return Ok(());
        }

        let corpus = args.get("corpus");
        for target in &mut targets {
            let name = target.name();
            if let Some(dir) = corpus {
                let entries = read_corpus_dir(&format!("{dir}/{name}"))?;
                let crashes = casbn_fuzz::replay_corpus(target.as_mut(), &entries, cfg.max_alloc);
                println!(
                    "{name:<18} corpus: {} entries replayed, {} failed",
                    entries.len(),
                    crashes.len()
                );
                for c in &crashes {
                    eprintln!("  [{}] {}", c.kind.name(), c.message);
                }
                found |= !crashes.is_empty();
            }
            let report = casbn_fuzz::run_target(target.as_mut(), &cfg);
            println!(
                "{name:<18} {:>7} iters  {:>6} accepted  {:>6} rejected  \
                 {:>2} crashes  trace {:#018x}  peak {} KiB",
                report.executed,
                report.accepted,
                report.rejected,
                report.crashes.len(),
                report.trace_checksum,
                report.peak_alloc / 1024,
            );
            for c in &report.crashes {
                eprintln!("  [{} @ iter {}] {}", c.kind.name(), c.iteration, c.message);
                if let Some(dir) = corpus {
                    let out = format!(
                        "{dir}/{name}/crash-{}-s{}-i{}.bin",
                        c.kind.name(),
                        cfg.seed,
                        c.iteration
                    );
                    write_artifact(&out, &c.input, RetryPolicy::default())?;
                    eprintln!("  wrote {out}");
                }
            }
            found |= !report.crashes.is_empty();
        }
        Ok(())
    };
    match run() {
        Err(e) => fail(&e),
        Ok(()) if found => 1,
        Ok(()) => 0,
    }
}

/// `casbn compare` — cluster-level comparison of two networks.
pub fn compare(argv: &[String]) -> i32 {
    let run = || -> Result<(), String> {
        let args = Args::parse(argv)?;
        let metrics = metrics_begin(&args);
        let orig = load(args.require("original")?)?;
        let filt = load(args.require("filtered")?)?;
        let params = McodeParams::default();
        let co = mcode_cluster(&orig, &params);
        let cf = mcode_cluster(&filt, &params);
        let table = casbn_analysis::overlap_table(&co, &cf);
        let (lost, found) = casbn_analysis::lost_and_found(&co, &cf);
        println!(
            "clusters: original {}, filtered {}; lost {}, newly found {}",
            co.len(),
            cf.len(),
            lost.len(),
            found.len()
        );
        for t in &table {
            if let Some(oi) = t.best_original {
                println!(
                    "filtered #{:<3} ~ original #{:<3}  node {:>5.1}%  edge {:>5.1}%",
                    t.filtered_idx,
                    oi,
                    100.0 * t.node_overlap,
                    100.0 * t.edge_overlap
                );
            }
        }
        metrics_finish(metrics)
    };
    run().map(|_| 0).unwrap_or_else(|e| fail(&e))
}
