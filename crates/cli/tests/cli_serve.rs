//! Process-level tests for `casbn serve`: scripted query replay is
//! byte-deterministic across worker counts, the checksum gate exits 1
//! on mismatch, and configuration errors exit 2 before any serving
//! starts.

use std::process::Command;

fn script_path() -> String {
    format!(
        "{}/tests/fixtures/serve_script.txt",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn run_scripted(threads: &str) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args([
            "serve",
            "--preset",
            "yng",
            "--scale",
            "0.02",
            "--samples",
            "8",
            "--script",
            &script_path(),
            "--threads",
            threads,
        ])
        .output()
        .expect("run casbn serve --script");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Pull `checksum N` off the `responses R checksum N` summary line.
fn parse_checksum(stdout: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("responses "))
        .unwrap_or_else(|| panic!("no summary line in {stdout:?}"));
    line.rsplit(' ')
        .next()
        .and_then(|tok| tok.parse().ok())
        .unwrap_or_else(|| panic!("unparseable summary line {line:?}"))
}

#[test]
fn scripted_replay_is_deterministic_across_worker_counts() {
    let (code1, stdout1, stderr1) = run_scripted("1");
    assert_eq!(code1, 0, "threads=1 failed: {stderr1}");
    let (code4, stdout4, stderr4) = run_scripted("4");
    assert_eq!(code4, 0, "threads=4 failed: {stderr4}");
    assert_eq!(
        stdout1, stdout4,
        "summary must not depend on the worker count"
    );
    let checksum = parse_checksum(&stdout1);
    assert_ne!(checksum, 0, "summary carries a real FNV checksum");

    // and the gate accepts its own replayed checksum
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args([
            "serve",
            "--preset",
            "yng",
            "--scale",
            "0.02",
            "--samples",
            "8",
            "--script",
            &script_path(),
            "--expect-checksum",
            &checksum.to_string(),
        ])
        .output()
        .expect("run casbn serve with pinned checksum");
    assert_eq!(out.status.code(), Some(0), "pinned checksum must verify");
}

#[test]
fn checksum_gate_exits_one_on_mismatch() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args([
            "serve",
            "--preset",
            "yng",
            "--scale",
            "0.02",
            "--samples",
            "8",
            "--script",
            &script_path(),
            "--expect-checksum",
            "1",
        ])
        .output()
        .expect("run casbn serve with wrong checksum");
    assert_eq!(out.status.code(), Some(1), "mismatch must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum mismatch"), "got {stderr:?}");
}

#[test]
fn serve_rejects_bad_inputs() {
    // no source at all
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .arg("serve")
        .output()
        .expect("run casbn serve");
    assert_eq!(out.status.code(), Some(2));
    // preset-only knobs with --in
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["serve", "--in", "whatever.tsv", "--scale", "0.5"])
        .output()
        .expect("run casbn serve --in with --scale");
    assert_eq!(out.status.code(), Some(2));
    // --expect-checksum is a script-mode gate
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args([
            "serve",
            "--preset",
            "yng",
            "--scale",
            "0.02",
            "--expect-checksum",
            "7",
        ])
        .output()
        .expect("run casbn serve --expect-checksum without --script");
    assert_eq!(out.status.code(), Some(2));
    // zero worker threads
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args([
            "serve",
            "--preset",
            "yng",
            "--scale",
            "0.02",
            "--script",
            &script_path(),
            "--threads",
            "0",
        ])
        .output()
        .expect("run casbn serve --threads 0");
    assert_eq!(out.status.code(), Some(2));
    // typo'd flag must not be silently ignored
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["serve", "--preset", "yng", "--scrpit", "x"])
        .output()
        .expect("run casbn serve with typo");
    assert_eq!(out.status.code(), Some(2));
}
