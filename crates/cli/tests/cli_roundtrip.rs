//! End-to-end CLI test: generate → filter → compare, through the public
//! command functions (no subprocess spawning needed).

use casbn_cli::commands;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("casbn_cli_test_{}_{name}", std::process::id()));
    p
}

fn sv(xs: &[&str]) -> Vec<String> {
    xs.iter().map(|s| s.to_string()).collect()
}

#[test]
fn generate_filter_compare_pipeline() {
    let net = tmp("net.tsv");
    let filt = tmp("filt.tsv");
    let code = commands::generate(&sv(&[
        "--preset",
        "yng",
        "--scale",
        "0.08",
        "--out",
        net.to_str().unwrap(),
    ]));
    assert_eq!(code, 0);
    assert!(net.exists());

    let code = commands::filter(&sv(&[
        "--in",
        net.to_str().unwrap(),
        "--algo",
        "chordal-nocomm",
        "--ranks",
        "4",
        "--out",
        filt.to_str().unwrap(),
    ]));
    assert_eq!(code, 0);
    assert!(filt.exists());

    let code = commands::compare(&sv(&[
        "--original",
        net.to_str().unwrap(),
        "--filtered",
        filt.to_str().unwrap(),
    ]));
    assert_eq!(code, 0);

    let code = commands::stats(&sv(&["--in", filt.to_str().unwrap()]));
    assert_eq!(code, 0);

    let code = commands::cluster(&sv(&["--in", net.to_str().unwrap()]));
    assert_eq!(code, 0);

    let _ = std::fs::remove_file(net);
    let _ = std::fs::remove_file(filt);
}

#[test]
fn stream_replay_roundtrip() {
    let replay = tmp("replay.tsv");
    let chordal = tmp("chordal.tsv");
    // synthesize, write the replay, stream it, dump the chordal network
    let code = commands::stream(&sv(&[
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "8",
        "--batch",
        "2",
        "--replay-out",
        replay.to_str().unwrap(),
        "--out",
        chordal.to_str().unwrap(),
    ]));
    assert_eq!(code, 0);
    assert!(replay.exists());
    assert!(chordal.exists());

    // re-streaming the written replay file reproduces the same pipeline
    // (JSON mode exercises the serialized summary too)
    let code = commands::stream(&sv(&[
        "--in",
        replay.to_str().unwrap(),
        "--batch",
        "2",
        "--json",
    ]));
    assert_eq!(code, 0);

    // the dumped chordal network parses and clusters
    let code = commands::cluster(&sv(&["--in", chordal.to_str().unwrap()]));
    assert_eq!(code, 0);

    let _ = std::fs::remove_file(replay);
    let _ = std::fs::remove_file(chordal);
}

#[test]
fn missing_file_fails_cleanly() {
    let code = commands::stats(&sv(&["--in", "/nonexistent/never.tsv"]));
    assert_eq!(code, 2);
}

#[test]
fn unknown_algo_fails_cleanly() {
    let net = tmp("net2.tsv");
    assert_eq!(
        commands::generate(&sv(&[
            "--preset",
            "mid",
            "--scale",
            "0.05",
            "--out",
            net.to_str().unwrap()
        ])),
        0
    );
    let code = commands::filter(&sv(&["--in", net.to_str().unwrap(), "--algo", "magic"]));
    assert_eq!(code, 2);
    let _ = std::fs::remove_file(net);
}

#[test]
fn every_algorithm_runs() {
    let net = tmp("net3.tsv");
    assert_eq!(
        commands::generate(&sv(&[
            "--preset",
            "unt",
            "--scale",
            "0.05",
            "--out",
            net.to_str().unwrap()
        ])),
        0
    );
    for algo in [
        "chordal-seq",
        "chordal-nocomm",
        "chordal-comm",
        "randomwalk",
        "forestfire",
        "randomnode",
        "randomedge",
    ] {
        let out = tmp(&format!("f_{algo}.tsv"));
        let code = commands::filter(&sv(&[
            "--in",
            net.to_str().unwrap(),
            "--algo",
            algo,
            "--ranks",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]));
        assert_eq!(code, 0, "{algo} failed");
        let _ = std::fs::remove_file(out);
    }
    let _ = std::fs::remove_file(net);
}
