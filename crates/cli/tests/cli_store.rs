//! End-to-end `.csbn` container workflows through the binary: pack /
//! inspect / verify, magic-byte auto-detection on every `--in`, and the
//! stream checkpoint → resume bit-identity gate.

use std::path::PathBuf;
use std::process::{Command, Output};

fn casbn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(args)
        .output()
        .expect("run casbn")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(format!("cli_store_{name}"));
    p.to_str().unwrap().to_string()
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Write a small deterministic edge-list network for the tests.
fn write_edge_list_fixture(path: &str) {
    let mut text = String::new();
    // two planted near-cliques joined by a path, plus spokes
    for block in [0u32, 8] {
        for u in block..block + 6 {
            for v in (u + 1)..block + 6 {
                text.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    text.push_str("5 8\n6 7\n7 14\n");
    std::fs::write(path, text).unwrap();
}

#[test]
fn pack_verify_inspect_and_consume_a_graph_container() {
    let edges = tmp("g.tsv");
    let packed = tmp("g.csbn");
    write_edge_list_fixture(&edges);

    let out = casbn(&["pack", "--in", &edges, "--kind", "graph", "--out", &packed]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("packed graph"));

    // verify: clean container
    let out = casbn(&["verify", "--in", &packed]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("all checksums verified"));

    // inspect: section table with kind name and checksum column
    let out = casbn(&["inspect", "--in", &packed]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("container       .csbn v1"), "{text}");
    assert!(text.contains("graph"), "{text}");
    assert!(text.contains("checksum 0x"), "{text}");

    // stats auto-detects the container and reports its metadata on
    // stderr alongside the usual graph statistics on stdout
    let out = casbn(&["stats", "--in", &packed]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let diag = stderr(&out);
    assert!(diag.contains("container       .csbn v1"), "{diag}");
    assert!(diag.contains("creator \"casbn "), "{diag}");
    let text = stdout(&out);
    assert!(text.contains("vertices        15"), "{text}");
    assert!(text.contains("edges           33"), "{text}");
    // …while the text input gets no container block
    let out = casbn(&["stats", "--in", &edges]);
    assert!(!stderr(&out).contains("container"), "{}", stderr(&out));

    // cluster and filter accept the container transparently and agree
    // with the text path
    let from_text = casbn(&["cluster", "--in", &edges]);
    let from_bin = casbn(&["cluster", "--in", &packed]);
    assert_eq!(from_text.status.code(), Some(0));
    assert_eq!(stdout(&from_text), stdout(&from_bin));

    let filt_text = tmp("filt_text.tsv");
    let filt_bin = tmp("filt_bin.tsv");
    let out = casbn(&[
        "filter",
        "--in",
        &edges,
        "--algo",
        "chordal-seq",
        "--out",
        &filt_text,
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let out = casbn(&[
        "filter",
        "--in",
        &packed,
        "--algo",
        "chordal-seq",
        "--out",
        &filt_bin,
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(
        std::fs::read(&filt_text).unwrap(),
        std::fs::read(&filt_bin).unwrap(),
        "filter output must not depend on the input container format"
    );

    // compare accepts containers on both --original and --filtered
    let out = casbn(&["compare", "--original", &packed, "--filtered", &packed]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}

#[test]
fn verify_flags_corruption_with_exit_one() {
    let edges = tmp("c.tsv");
    let packed = tmp("c.csbn");
    write_edge_list_fixture(&edges);
    let out = casbn(&["pack", "--in", &edges, "--kind", "graph", "--out", &packed]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let mut bytes = std::fs::read(&packed).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let corrupt = tmp("c_corrupt.csbn");
    std::fs::write(&corrupt, &bytes).unwrap();

    let out = casbn(&["verify", "--in", &corrupt]);
    assert_eq!(out.status.code(), Some(1), "corruption must exit 1");
    assert!(stderr(&out).contains("checksum"), "{}", stderr(&out));

    // consuming subcommands refuse the corrupt container too
    let out = casbn(&["stats", "--in", &corrupt]);
    assert_eq!(out.status.code(), Some(2));

    // and a truncated container is a typed error, not a panic
    let short = tmp("c_short.csbn");
    std::fs::write(&short, &std::fs::read(&packed).unwrap()[..21]).unwrap();
    let out = casbn(&["verify", "--in", &short]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("truncated"), "{}", stderr(&out));
}

#[test]
fn pack_rejects_bad_usage() {
    let edges = tmp("u.tsv");
    write_edge_list_fixture(&edges);
    // unknown kind
    let out = casbn(&[
        "pack",
        "--in",
        &edges,
        "--kind",
        "spreadsheet",
        "--out",
        "x",
    ]);
    assert_eq!(out.status.code(), Some(2));
    // missing --out
    let out = casbn(&["pack", "--in", &edges, "--kind", "graph"]);
    assert_eq!(out.status.code(), Some(2));
    // typo'd flag is rejected, not ignored
    let out = casbn(&["pack", "--in", &edges, "--kid", "graph", "--out", "x"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn packed_replay_streams_identically_to_text_replay() {
    let replay = tmp("r.tsv");
    let packed = tmp("r.csbn");
    // synthesize a replay via the CLI itself, then pack it
    let out = casbn(&[
        "stream",
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "6",
        "--replay-out",
        &replay,
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let out = casbn(&[
        "pack", "--in", &replay, "--kind", "replay", "--out", &packed,
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let a = casbn(&["stream", "--in", &replay, "--json"]);
    let b = casbn(&["stream", "--in", &packed, "--json"]);
    assert_eq!(a.status.code(), Some(0), "{}", stderr(&a));
    assert_eq!(b.status.code(), Some(0), "{}", stderr(&b));
    // wall-clock fields are nondeterministic; everything else must match
    // (catches both Duration's {"secs","nanos"} pairs and the summary's
    // wall_*_nanos percentile fields)
    let strip_wall = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.contains("nanos") && !l.contains("\"secs\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_wall(&stdout(&a)),
        strip_wall(&stdout(&b)),
        "replay container must be transparent"
    );
}

#[test]
fn cluster_json_packs_into_a_clusters_section() {
    let edges = tmp("k.tsv");
    let json = tmp("k.json");
    let packed = tmp("k.csbn");
    write_edge_list_fixture(&edges);
    let out = casbn(&["cluster", "--in", &edges, "--json"]);
    assert_eq!(out.status.code(), Some(0));
    std::fs::write(&json, stdout(&out)).unwrap();
    let out = casbn(&[
        "pack", "--in", &json, "--kind", "clusters", "--out", &packed,
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let out = casbn(&["inspect", "--in", &packed]);
    assert!(stdout(&out).contains("clusters"), "{}", stdout(&out));
}

#[test]
fn stream_checkpoint_resume_reproduces_the_uninterrupted_checksum() {
    // the acceptance gate, end to end through the binary: a run stopped
    // after 2 of 4 windows and resumed from its checkpoint must print
    // the exact checksum of the uninterrupted run
    let preset = [
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "8",
        "--batch",
        "2",
    ];

    let full = casbn(&[&["stream"], &preset[..]].concat());
    assert_eq!(full.status.code(), Some(0), "{}", stderr(&full));
    let full_out = stdout(&full);
    let checksum_line = full_out
        .lines()
        .find(|l| l.starts_with("checksum "))
        .expect("summary prints a checksum");
    let checksum = checksum_line.trim_start_matches("checksum ").to_string();

    // half the run, checkpointed
    let ck = tmp("s.ck.csbn");
    let out = casbn(
        &[
            &["stream"],
            &preset[..],
            &["--windows", "2", "--checkpoint", ck.as_str()],
        ]
        .concat(),
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("wrote checkpoint"),
        "{}",
        stderr(&out)
    );
    assert!(
        stderr(&out)
            .lines()
            .filter(|l| l.starts_with(char::is_numeric))
            .count()
            < 4,
        "partial run must stop early"
    );

    // the checkpoint is itself a verifiable container
    let out = casbn(&["verify", "--in", &ck]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // resumed remainder gates on the uninterrupted checksum (exit 0)
    let out = casbn(&[
        "stream",
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "8",
        "--resume",
        &ck,
        "--expect-checksum",
        &checksum,
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume diverged: {}\n{}",
        stdout(&out),
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("resumed at sample 4"),
        "{}",
        stderr(&out)
    );

    // config overrides while resuming are rejected, not silently applied
    let out = casbn(&[
        "stream",
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "8",
        "--resume",
        &ck,
        "--batch",
        "3",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("comes from the checkpoint"),
        "{}",
        stderr(&out)
    );

    // a gene-count mismatch between checkpoint and replay is caught
    let out = casbn(&[
        "stream",
        "--preset",
        "yng",
        "--scale",
        "0.01",
        "--samples",
        "8",
        "--resume",
        &ck,
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("genes"), "{}", stderr(&out));
}

#[test]
fn checkpoint_into_an_existing_container_appends_a_generation() {
    // suspend after 2 windows into a fresh checkpoint, then resume and
    // suspend again into the SAME file: the second write appends a
    // superseding generation instead of rewriting, and the appended
    // container resumes to the uninterrupted run's checksum
    let preset = [
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "8",
        "--batch",
        "2",
    ];
    let full = casbn(&[&["stream"], &preset[..]].concat());
    assert_eq!(full.status.code(), Some(0), "{}", stderr(&full));
    let checksum = stdout(&full)
        .lines()
        .find(|l| l.starts_with("checksum "))
        .expect("summary prints a checksum")
        .trim_start_matches("checksum ")
        .to_string();

    let ck = tmp("a.ck.csbn");
    let _ = std::fs::remove_file(&ck);
    let out = casbn(
        &[
            &["stream"],
            &preset[..],
            &["--windows", "2", "--checkpoint", ck.as_str()],
        ]
        .concat(),
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let base_len = std::fs::metadata(&ck).unwrap().len();

    // resume one more window, appending into the same file
    let out = casbn(&[
        "stream",
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "8",
        "--resume",
        &ck,
        "--windows",
        "1",
        "--checkpoint",
        &ck,
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("appended"), "{}", stderr(&out));
    assert!(
        std::fs::metadata(&ck).unwrap().len() > base_len,
        "append must grow the file"
    );

    // inspect reports the appended layout and lazy open
    let out = casbn(&["inspect", "--in", &ck]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("appended (generation 1)"), "{text}");
    assert!(text.contains("lazy open"), "{text}");

    // verify still sweeps every checksum of the appended layout
    let out = casbn(&["verify", "--in", &ck]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // and the appended checkpoint resumes to the pinned checksum
    let out = casbn(&[
        "stream",
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "8",
        "--resume",
        &ck,
        "--expect-checksum",
        &checksum,
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "appended resume diverged: {}\n{}",
        stdout(&out),
        stderr(&out)
    );
}

#[test]
fn degraded_resume_recovers_a_torn_checkpoint_through_the_binary() {
    // build a two-generation checkpoint (suspend at window 2, resume and
    // suspend again at window 3), then tear bytes off the tail so the
    // newest generation's footer is destroyed: a plain --resume must
    // refuse the damaged file, while --resume --degraded falls back to
    // the newest intact generation, warns on stderr, and still drives
    // the remaining windows to the uninterrupted run's checksum
    let preset = [
        "--preset",
        "yng",
        "--scale",
        "0.02",
        "--samples",
        "8",
        "--batch",
        "2",
    ];
    // --batch comes from the checkpoint when resuming, so resume
    // invocations drop it
    let resume_preset = ["--preset", "yng", "--scale", "0.02", "--samples", "8"];
    let full = casbn(&[&["stream"], &preset[..]].concat());
    assert_eq!(full.status.code(), Some(0), "{}", stderr(&full));
    let checksum = stdout(&full)
        .lines()
        .find(|l| l.starts_with("checksum "))
        .expect("summary prints a checksum")
        .trim_start_matches("checksum ")
        .to_string();

    let ck = tmp("torn.ck.csbn");
    let _ = std::fs::remove_file(&ck);
    let out = casbn(
        &[
            &["stream"],
            &preset[..],
            &["--windows", "2", "--checkpoint", ck.as_str()],
        ]
        .concat(),
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let out = casbn(
        &[
            &["stream"],
            &resume_preset[..],
            &[
                "--resume",
                ck.as_str(),
                "--windows",
                "1",
                "--checkpoint",
                ck.as_str(),
            ],
        ]
        .concat(),
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // tear into the appended generation's footer
    let bytes = std::fs::read(&ck).unwrap();
    std::fs::write(&ck, &bytes[..bytes.len() - 13]).unwrap();

    // without --degraded the damaged checkpoint is refused
    let out = casbn(&[&["stream"], &resume_preset[..], &["--resume", ck.as_str()]].concat());
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));

    // --degraded only applies when resuming
    let out = casbn(&[&["stream"], &resume_preset[..], &["--degraded"]].concat());
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--degraded only applies"),
        "{}",
        stderr(&out)
    );

    // degraded resume falls back to the window-2 generation and the
    // remaining windows reproduce the pinned uninterrupted checksum
    let out = casbn(
        &[
            &["stream"],
            &resume_preset[..],
            &[
                "--resume",
                ck.as_str(),
                "--degraded",
                "--expect-checksum",
                checksum.as_str(),
            ],
        ]
        .concat(),
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "degraded resume diverged: {}\n{}",
        stdout(&out),
        stderr(&out)
    );
    assert!(
        stderr(&out).contains("is damaged; resuming from generation"),
        "{}",
        stderr(&out)
    );

    // inspect --degraded reports the torn tail instead of erroring
    let out = casbn(&["inspect", "--in", &ck, "--degraded"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("torn tail"), "{}", stdout(&out));
}
