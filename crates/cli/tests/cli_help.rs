//! `casbn --help` snapshot: the binary's help output is exactly
//! [`commands::USAGE`], and `USAGE` documents exactly the flags the
//! subcommands parse.

use casbn_cli::commands::{BENCH_USAGE, USAGE};
use std::process::Command;

/// Every `--flag` a subcommand reads via `Args` (grep `args.(get|require|
/// get_or|has)` in `commands.rs` when adding one — and add it here AND to
/// `USAGE`).
const PARSED_FLAGS: &[&str] = &[
    "--preset",
    "--scale",
    "--in",
    "--out",
    "--algo",
    "--ranks",
    "--partition",
    "--seed",
    "--min-score",
    "--min-size",
    "--json",
    "--centrality",
    "--original",
    "--filtered",
    "--repeats",
    "--baseline",
    "--threshold",
    "--wall",
];

/// The `bench` flags, also documented in the subcommand's own help.
const BENCH_FLAGS: &[&str] = &[
    "--scale",
    "--repeats",
    "--out",
    "--baseline",
    "--threshold",
    "--wall",
];

#[test]
fn help_snapshot_matches_usage_constant() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .arg("--help")
        .output()
        .expect("run casbn --help");
    assert!(out.status.success(), "--help exited nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8 help output");
    assert_eq!(stdout, USAGE, "binary help drifted from commands::USAGE");
}

#[test]
fn bare_invocation_prints_usage_too() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .output()
        .expect("run casbn");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), USAGE);
}

#[test]
fn unknown_subcommand_fails_with_usage_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .arg("frobnicate")
        .output()
        .expect("run casbn frobnicate");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("USAGE:"));
}

#[test]
fn usage_documents_every_parsed_flag() {
    for flag in PARSED_FLAGS {
        assert!(USAGE.contains(flag), "USAGE is missing `{flag}`");
    }
}

#[test]
fn bench_help_snapshot_matches_bench_usage_constant() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["bench", "--help"])
        .output()
        .expect("run casbn bench --help");
    assert!(out.status.success(), "bench --help exited nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8 help output");
    assert_eq!(stdout, BENCH_USAGE, "bench help drifted from BENCH_USAGE");
}

#[test]
fn bench_usage_documents_every_bench_flag() {
    for flag in BENCH_FLAGS {
        assert!(
            BENCH_USAGE.contains(flag),
            "BENCH_USAGE is missing `{flag}`"
        );
    }
}

#[test]
fn bench_rejects_bad_scale() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["bench", "--scale", "0"])
        .output()
        .expect("run casbn bench --scale 0");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_names_every_subcommand_and_algorithm() {
    for sub in [
        "generate", "filter", "cluster", "stats", "compare", "bench", "help",
    ] {
        assert!(
            USAGE.contains(&format!("casbn {sub}")),
            "USAGE is missing subcommand `{sub}`"
        );
    }
    for algo in [
        "chordal-seq",
        "chordal-nocomm",
        "chordal-comm",
        "randomwalk",
        "forestfire",
        "randomnode",
        "randomedge",
    ] {
        assert!(USAGE.contains(algo), "USAGE is missing algorithm `{algo}`");
    }
}
