//! `casbn --help` snapshot: the binary's help output is exactly
//! [`commands::USAGE`], and `USAGE` documents exactly the flags the
//! subcommands parse.

use casbn_cli::commands::{BENCH_USAGE, FUZZ_USAGE, SERVE_USAGE, STREAM_USAGE, USAGE};
use std::process::Command;

/// Every `--flag` a subcommand reads via `Args` (grep `args.(get|require|
/// get_or|has)` in `commands.rs` when adding one — and add it here AND to
/// `USAGE`).
const PARSED_FLAGS: &[&str] = &[
    "--preset",
    "--scale",
    "--in",
    "--out",
    "--algo",
    "--ranks",
    "--partition",
    "--seed",
    "--min-score",
    "--min-size",
    "--json",
    "--centrality",
    "--original",
    "--filtered",
    "--repeats",
    "--baseline",
    "--threshold",
    "--wall",
    "--samples",
    "--batch",
    "--min-rho",
    "--replay-out",
    "--expect-checksum",
    "--summary",
    "--checkpoint",
    "--resume",
    "--windows",
    "--degraded",
    "--io-retries",
    "--kind",
    "--target",
    "--iters",
    "--corpus",
    "--minimize",
    "--metrics",
    "--script",
    "--listen",
    "--threads",
];

/// The `bench` flags, also documented in the subcommand's own help.
const BENCH_FLAGS: &[&str] = &[
    "--scale",
    "--repeats",
    "--out",
    "--baseline",
    "--threshold",
    "--wall",
    "--summary",
    "--metrics",
];

/// The `stream` flags, also documented in the subcommand's own help.
const STREAM_FLAGS: &[&str] = &[
    "--preset",
    "--scale",
    "--samples",
    "--in",
    "--batch",
    "--min-rho",
    "--min-score",
    "--json",
    "--out",
    "--replay-out",
    "--expect-checksum",
    "--checkpoint",
    "--resume",
    "--degraded",
    "--windows",
    "--io-retries",
    "--metrics",
];

/// The `fuzz` flags, also documented in the subcommand's own help.
const FUZZ_FLAGS: &[&str] = &["--target", "--iters", "--seed", "--corpus", "--minimize"];

/// The `serve` flags, also documented in the subcommand's own help.
const SERVE_FLAGS: &[&str] = &[
    "--in",
    "--preset",
    "--scale",
    "--samples",
    "--script",
    "--listen",
    "--threads",
    "--batch",
    "--checkpoint",
    "--expect-checksum",
    "--io-retries",
    "--metrics",
];

#[test]
fn help_snapshot_matches_usage_constant() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .arg("--help")
        .output()
        .expect("run casbn --help");
    assert!(out.status.success(), "--help exited nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8 help output");
    assert_eq!(stdout, USAGE, "binary help drifted from commands::USAGE");
}

#[test]
fn bare_invocation_prints_usage_too() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .output()
        .expect("run casbn");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), USAGE);
}

#[test]
fn unknown_subcommand_fails_with_usage_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .arg("frobnicate")
        .output()
        .expect("run casbn frobnicate");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("USAGE:"));
}

#[test]
fn usage_documents_every_parsed_flag() {
    for flag in PARSED_FLAGS {
        assert!(USAGE.contains(flag), "USAGE is missing `{flag}`");
    }
}

#[test]
fn bench_help_snapshot_matches_bench_usage_constant() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["bench", "--help"])
        .output()
        .expect("run casbn bench --help");
    assert!(out.status.success(), "bench --help exited nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8 help output");
    assert_eq!(stdout, BENCH_USAGE, "bench help drifted from BENCH_USAGE");
}

#[test]
fn bench_usage_documents_every_bench_flag() {
    for flag in BENCH_FLAGS {
        assert!(
            BENCH_USAGE.contains(flag),
            "BENCH_USAGE is missing `{flag}`"
        );
    }
}

#[test]
fn stream_help_snapshot_matches_stream_usage_constant() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["stream", "--help"])
        .output()
        .expect("run casbn stream --help");
    assert!(out.status.success(), "stream --help exited nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8 help output");
    assert_eq!(
        stdout, STREAM_USAGE,
        "stream help drifted from STREAM_USAGE"
    );
}

#[test]
fn stream_usage_documents_every_stream_flag() {
    for flag in STREAM_FLAGS {
        assert!(
            STREAM_USAGE.contains(flag),
            "STREAM_USAGE is missing `{flag}`"
        );
    }
}

#[test]
fn fuzz_help_snapshot_matches_fuzz_usage_constant() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["fuzz", "--help"])
        .output()
        .expect("run casbn fuzz --help");
    assert!(out.status.success(), "fuzz --help exited nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8 help output");
    assert_eq!(stdout, FUZZ_USAGE, "fuzz help drifted from FUZZ_USAGE");
}

#[test]
fn fuzz_usage_documents_every_fuzz_flag() {
    for flag in FUZZ_FLAGS {
        assert!(FUZZ_USAGE.contains(flag), "FUZZ_USAGE is missing `{flag}`");
    }
}

#[test]
fn serve_help_snapshot_matches_serve_usage_constant() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["serve", "--help"])
        .output()
        .expect("run casbn serve --help");
    assert!(out.status.success(), "serve --help exited nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8 help output");
    assert_eq!(stdout, SERVE_USAGE, "serve help drifted from SERVE_USAGE");
}

#[test]
fn serve_usage_documents_every_serve_flag() {
    for flag in SERVE_FLAGS {
        assert!(
            SERVE_USAGE.contains(flag),
            "SERVE_USAGE is missing `{flag}`"
        );
    }
}

#[test]
fn fuzz_rejects_bad_inputs() {
    // unknown target name
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["fuzz", "--target", "frobnicator", "--iters", "1"])
        .output()
        .expect("run casbn fuzz --target frobnicator");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown --target"), "got {stderr:?}");
    // typo'd flag must not be silently ignored
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["fuzz", "--itres", "1"])
        .output()
        .expect("run casbn fuzz with typo");
    assert_eq!(out.status.code(), Some(2));
    // --minimize over all targets is ambiguous
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["fuzz", "--minimize", "whatever.bin"])
        .output()
        .expect("run casbn fuzz --minimize without --target");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("single --target"), "got {stderr:?}");
}

#[test]
fn stream_rejects_bad_inputs() {
    // no source at all
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .arg("stream")
        .output()
        .expect("run casbn stream");
    assert_eq!(out.status.code(), Some(2));
    // zero batch
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args([
            "stream", "--preset", "yng", "--scale", "0.01", "--batch", "0",
        ])
        .output()
        .expect("run casbn stream --batch 0");
    assert_eq!(out.status.code(), Some(2));
    // typo'd flag must not be silently ignored
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["stream", "--preset", "yng", "--expct-checksum", "1"])
        .output()
        .expect("run casbn stream with typo");
    assert_eq!(out.status.code(), Some(2));
    // preset-only knobs must be rejected in --in mode, not ignored —
    // otherwise a user could pin a checksum for a different run than
    // they believe they configured
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["stream", "--in", "whatever.tsv", "--samples", "4"])
        .output()
        .expect("run casbn stream --in with --samples");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--samples only applies"), "got {stderr:?}");
}

#[test]
fn stream_checksum_gate_exits_one_on_mismatch() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args([
            "stream",
            "--preset",
            "yng",
            "--scale",
            "0.01",
            "--samples",
            "4",
            "--expect-checksum",
            "1",
        ])
        .output()
        .expect("run casbn stream with wrong checksum");
    assert_eq!(out.status.code(), Some(1), "mismatch must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum mismatch"));
}

#[test]
fn bench_rejects_bad_scale() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(["bench", "--scale", "0"])
        .output()
        .expect("run casbn bench --scale 0");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_names_every_subcommand_and_algorithm() {
    for sub in [
        "generate", "filter", "cluster", "stats", "compare", "bench", "stream", "serve", "pack",
        "inspect", "verify", "fuzz", "help",
    ] {
        assert!(
            USAGE.contains(&format!("casbn {sub}")),
            "USAGE is missing subcommand `{sub}`"
        );
    }
    for algo in [
        "chordal-seq",
        "chordal-nocomm",
        "chordal-comm",
        "randomwalk",
        "forestfire",
        "randomnode",
        "randomedge",
    ] {
        assert!(USAGE.contains(algo), "USAGE is missing algorithm `{algo}`");
    }
}
