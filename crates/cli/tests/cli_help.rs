//! `casbn --help` snapshot: the binary's help output is exactly
//! [`commands::USAGE`], and `USAGE` documents exactly the flags the
//! subcommands parse.

use casbn_cli::commands::USAGE;
use std::process::Command;

/// Every `--flag` a subcommand reads via `Args` (grep `args.(get|require|
/// get_or|has)` in `commands.rs` when adding one — and add it here AND to
/// `USAGE`).
const PARSED_FLAGS: &[&str] = &[
    "--preset",
    "--scale",
    "--in",
    "--out",
    "--algo",
    "--ranks",
    "--partition",
    "--seed",
    "--min-score",
    "--min-size",
    "--json",
    "--centrality",
    "--original",
    "--filtered",
];

#[test]
fn help_snapshot_matches_usage_constant() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .arg("--help")
        .output()
        .expect("run casbn --help");
    assert!(out.status.success(), "--help exited nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8 help output");
    assert_eq!(stdout, USAGE, "binary help drifted from commands::USAGE");
}

#[test]
fn bare_invocation_prints_usage_too() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .output()
        .expect("run casbn");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), USAGE);
}

#[test]
fn unknown_subcommand_fails_with_usage_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_casbn"))
        .arg("frobnicate")
        .output()
        .expect("run casbn frobnicate");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("USAGE:"));
}

#[test]
fn usage_documents_every_parsed_flag() {
    for flag in PARSED_FLAGS {
        assert!(USAGE.contains(flag), "USAGE is missing `{flag}`");
    }
}

#[test]
fn usage_names_every_subcommand_and_algorithm() {
    for sub in ["generate", "filter", "cluster", "stats", "compare", "help"] {
        assert!(
            USAGE.contains(&format!("casbn {sub}")),
            "USAGE is missing subcommand `{sub}`"
        );
    }
    for algo in [
        "chordal-seq",
        "chordal-nocomm",
        "chordal-comm",
        "randomwalk",
        "forestfire",
        "randomnode",
        "randomedge",
    ] {
        assert!(USAGE.contains(algo), "USAGE is missing algorithm `{algo}`");
    }
}
