//! `--metrics` through the binary: the snapshot's deterministic section
//! is pinned by a committed fixture (the CI metrics-smoke gate), the
//! `-` destination renders on stderr without disturbing stdout, and
//! `inspect --json` emits the machine-readable container layout.
//!
//! Regenerate the fixture deliberately with
//! `CASBN_REGEN_METRICS=1 cargo test -p casbn_cli --test cli_metrics`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn casbn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(args)
        .output()
        .expect("run casbn")
}

fn tmp(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(format!("cli_metrics_{name}"));
    p.to_str().unwrap().to_string()
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// The CI streaming-smoke invocation, with telemetry armed.
const STREAM_ARGS: &[&str] = &[
    "stream",
    "--preset",
    "yng",
    "--scale",
    "0.02",
    "--batch",
    "2",
    "--expect-checksum",
    "17660843889947913608",
];

/// Extract the `"deterministic"` object from a snapshot document by
/// brace matching. Sound because the writer never emits braces inside
/// strings here: every key is a static identifier and every value in
/// the metrics document is numeric.
fn extract_deterministic(doc: &str) -> String {
    let key = "\"deterministic\": ";
    let start = doc.find(key).expect("deterministic section") + key.len();
    let mut depth = 0usize;
    for (i, b) in doc.as_bytes()[start..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return doc[start..start + i + 1].to_string();
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced deterministic object in {doc}");
}

#[test]
fn stream_metrics_snapshot_matches_committed_fixture() {
    let out_path = tmp("stream.metrics.json");
    let out = casbn(&[STREAM_ARGS, &["--metrics", out_path.as_str()]].concat());
    assert_eq!(
        out.status.code(),
        Some(0),
        "telemetry must not disturb the pinned checksum: {}",
        stderr(&out)
    );
    assert!(stderr(&out).contains("wrote metrics"), "{}", stderr(&out));

    let doc = std::fs::read_to_string(&out_path).expect("metrics file");
    assert!(doc.contains("\"version\": 1"), "{doc}");
    assert!(
        doc.contains("\"wall\""),
        "full document carries wall: {doc}"
    );
    let det = extract_deterministic(&doc);
    assert!(
        !det.contains("wall"),
        "wall leaked into deterministic: {det}"
    );

    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/metrics_stream_yng_002.json");
    if std::env::var("CASBN_REGEN_METRICS").is_ok() {
        std::fs::write(&fixture, det.clone() + "\n").expect("write fixture");
        eprintln!("regenerated {}", fixture.display());
        return;
    }
    let want = std::fs::read_to_string(&fixture)
        .expect("committed fixture (regenerate with CASBN_REGEN_METRICS=1)");
    assert_eq!(
        det,
        want.trim_end(),
        "deterministic metrics drifted from the committed fixture; if the \
         change is intentional regenerate with CASBN_REGEN_METRICS=1"
    );

    // a second run reproduces the snapshot byte-for-byte
    let out_path2 = tmp("stream.metrics2.json");
    let out = casbn(&[STREAM_ARGS, &["--metrics", out_path2.as_str()]].concat());
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let doc2 = std::fs::read_to_string(&out_path2).expect("metrics file");
    assert_eq!(
        extract_deterministic(&doc2),
        det,
        "snapshot not reproducible"
    );
}

#[test]
fn metrics_dash_renders_on_stderr_and_leaves_stdout_alone() {
    let plain = casbn(STREAM_ARGS);
    assert_eq!(plain.status.code(), Some(0), "{}", stderr(&plain));
    let dashed = casbn(&[STREAM_ARGS, &["--metrics", "-"]].concat());
    assert_eq!(dashed.status.code(), Some(0), "{}", stderr(&dashed));
    assert_eq!(
        stdout(&plain),
        stdout(&dashed),
        "`--metrics -` must not disturb stdout"
    );
    let diag = stderr(&dashed);
    assert!(diag.contains("counters"), "{diag}");
    assert!(diag.contains("stream.windows"), "{diag}");
    assert!(diag.contains("spans"), "{diag}");
    // the run diagnostics also report the wall percentiles satellite
    assert!(diag.contains("window wall p50"), "{diag}");
}

#[test]
fn inspect_json_reports_the_container_layout() {
    let edges = tmp("net.tsv");
    let packed = tmp("net.csbn");
    std::fs::write(&edges, "0 1\n1 2\n2 0\n2 3\n").unwrap();
    let out = casbn(&["pack", "--in", &edges, "--kind", "graph", "--out", &packed]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let out = casbn(&["inspect", "--in", &packed, "--json"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let doc = stdout(&out);
    assert!(
        doc.starts_with('{') && doc.trim_end().ends_with('}'),
        "{doc}"
    );
    for needle in [
        "\"version\": 1",
        "\"format_version\": 1",
        "\"layout\": \"base\"",
        "\"lazy\": true",
        "\"kind\": \"graph\"",
        "\"checksum\": \"0x",
        // inspect opens lazily and never touches the payload
        "\"verified\": false",
    ] {
        assert!(doc.contains(needle), "missing {needle} in {doc}");
    }

    // the human table is unchanged and stays on stdout
    let out = casbn(&["inspect", "--in", &packed]);
    assert!(stdout(&out).contains("container       .csbn v1"));

    // --json plus --metrics keeps the layout document alone on stdout
    let mpath = tmp("inspect.metrics.json");
    let out = casbn(&["inspect", "--in", &packed, "--json", "--metrics", &mpath]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stdout(&out), doc, "metrics must not disturb stdout");
    let metrics = std::fs::read_to_string(&mpath).unwrap();
    assert!(metrics.contains("store.open_lazy"), "{metrics}");
}
