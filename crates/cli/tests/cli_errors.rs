//! Error-path contract for the `casbn` binary: malformed input files
//! and bad flag combinations exit nonzero with a one-line diagnostic —
//! never a panic, never a backtrace. These are the same surfaces the
//! `cli-argv` fuzz target drives in-process; this suite pins the
//! end-to-end behaviour of the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn casbn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_casbn"))
        .args(args)
        .output()
        .expect("run casbn")
}

/// Write `bytes` to a uniquely named temp file and return its path.
fn tmpfile(name: &str, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("casbn-cli-errors-{}-{name}", std::process::id()));
    std::fs::write(&path, bytes).expect("write temp file");
    path
}

/// The contract: the exact exit code, a diagnostic containing `needle`
/// on stderr, and no panic or backtrace anywhere.
fn assert_graceful(args: &[&str], want_code: i32, needle: &str) {
    let out = casbn(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(want_code),
        "argv {args:?}: stderr {stderr:?}"
    );
    assert!(
        stderr.contains(needle),
        "argv {args:?}: stderr {stderr:?} missing {needle:?}"
    );
    assert!(!stderr.contains("panicked"), "argv {args:?}: {stderr:?}");
    assert!(
        !stderr.contains("RUST_BACKTRACE"),
        "argv {args:?}: {stderr:?}"
    );
}

#[test]
fn missing_input_file_is_a_diagnostic_not_a_panic() {
    assert_graceful(
        &["stats", "--in", "/nonexistent/casbn-no-such-file"],
        2,
        "error: open",
    );
}

#[test]
fn sparse_id_bomb_is_rejected_with_the_typed_diagnostic() {
    // the minimized fuzz crasher: one edge whose vertex id implies a
    // 2^32-vertex allocation — must be the typed SparseIds rejection
    let p = tmpfile("sparse.txt", b"0 4294967295\n");
    assert_graceful(
        &["cluster", "--in", p.to_str().unwrap()],
        2,
        "vertex ids imply",
    );
}

#[test]
fn ragged_replay_is_rejected() {
    let p = tmpfile("ragged.tsv", b"1.0 2.0\n3.0\n");
    assert_graceful(&["stream", "--in", p.to_str().unwrap()], 2, "error:");
}

#[test]
fn resume_from_a_non_checkpoint_is_rejected() {
    let p = tmpfile("notckpt.txt", b"hello\n");
    assert_graceful(
        &[
            "stream",
            "--preset",
            "yng",
            "--scale",
            "0.01",
            "--samples",
            "4",
            "--resume",
            p.to_str().unwrap(),
        ],
        2,
        "not a .csbn checkpoint",
    );
}

#[test]
fn truncated_container_fails_verify_with_exit_one() {
    // magic bytes only: parses far enough to be "a .csbn", then fails
    // validation — `verify`'s corruption exit, not a usage error
    let p = tmpfile(
        "trunc.csbn",
        &[0x89, b'C', b'S', b'B', b'N', 0x0D, 0x0A, 0x00],
    );
    let out = casbn(&["verify", "--in", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{stderr:?}");
}

#[test]
fn garbage_after_the_magic_is_a_diagnostic() {
    let mut bytes = vec![0x89, b'C', b'S', b'B', b'N', 0x0D, 0x0A, 0x00];
    bytes.extend_from_slice(&[0xFF; 64]);
    let p = tmpfile("garbage.csbn", &bytes);
    assert_graceful(&["stats", "--in", p.to_str().unwrap()], 2, "error:");
}

#[test]
fn unknown_algorithm_and_kind_are_named_in_the_diagnostic() {
    let p = tmpfile("tiny.txt", b"0 1\n");
    assert_graceful(
        &["filter", "--in", p.to_str().unwrap(), "--algo", "warp"],
        2,
        "unknown algorithm",
    );
    assert_graceful(
        &[
            "pack",
            "--in",
            p.to_str().unwrap(),
            "--kind",
            "bogus",
            "--out",
            "/dev/null",
        ],
        2,
        "unknown --kind",
    );
}

#[test]
fn valueless_flag_is_rejected_not_swallowed() {
    assert_graceful(&["stream", "--preset"], 2, "needs a value");
}
