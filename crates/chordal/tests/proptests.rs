//! Property-based tests for the chordal machinery.

use casbn_chordal::{
    check_peo, is_chordal, maximal_chordal_subgraph, repair_maximal, ChordalConfig, SelectionRule,
};
use casbn_graph::{Graph, VertexId};
use proptest::prelude::*;

/// Strategy: a random graph with up to `nmax` vertices and arbitrary edges.
fn arb_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..nmax).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..=max_edges.min(80))
            .prop_map(move |pairs| Graph::from_edges(n, &pairs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dsw_output_is_chordal_subgraph(g in arb_graph(24)) {
        for sel in [SelectionRule::LabelOrder, SelectionRule::MaxCardinality] {
            let r = maximal_chordal_subgraph(&g, ChordalConfig { selection: sel });
            prop_assert!(is_chordal(&r.graph));
            prop_assert_eq!(r.graph.n(), g.n());
            for (u, v) in r.graph.edges() {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn dsw_order_reversed_is_peo(g in arb_graph(20)) {
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        let mut peo = r.order.clone();
        peo.reverse();
        prop_assert!(check_peo(&r.graph, &peo));
    }

    #[test]
    fn chordal_graphs_are_fixed_points_after_repair(g in arb_graph(16)) {
        // repair_maximal on (g, dsw(g)) must be maximal: no absent edge can
        // be added back
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        let fixed = repair_maximal(&g, &r.graph);
        prop_assert!(is_chordal(&fixed));
        for (u, v) in g.edges() {
            if !fixed.has_edge(u, v) {
                let mut t = fixed.clone();
                t.add_edge(u, v);
                prop_assert!(!is_chordal(&t));
            }
        }
    }

    #[test]
    fn is_chordal_agrees_with_triangle_free_cycles(n in 4usize..20) {
        // chordless cycles are the canonical non-chordal family
        let edges: Vec<_> = (0..n).map(|i| (i as VertexId, ((i + 1) % n) as VertexId)).collect();
        let g = Graph::from_edges(n, &edges);
        prop_assert!(!is_chordal(&g));
    }

    #[test]
    fn adding_edges_to_dsw_result_never_needed_for_chordality(g in arb_graph(14)) {
        // i.e., result of DSW is chordal even before repair
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        prop_assert!(is_chordal(&r.graph));
    }

    #[test]
    fn dsw_under_concurrent_threads_is_chordal_and_deterministic(
        g in arb_graph(20),
        nthreads in 1usize..6,
    ) {
        // the parallel filters run one DSW per rank on real OS threads —
        // the extraction must be thread-safe and give every thread the
        // identical result (proptest draws the thread count)
        let base = maximal_chordal_subgraph(&g, ChordalConfig::default());
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nthreads)
                .map(|_| scope.spawn(|| maximal_chordal_subgraph(&g, ChordalConfig::default())))
                .collect();
            handles.into_iter().map(|h| h.join().expect("DSW thread panicked")).collect()
        });
        for r in &results {
            prop_assert!(is_chordal(&r.graph), "threaded DSW output not chordal");
            prop_assert!(r.graph.same_edges(&base.graph), "threaded DSW diverged");
            prop_assert_eq!(&r.order, &base.order, "threaded DSW order diverged");
            for (u, v) in r.graph.edges() {
                prop_assert!(g.has_edge(u, v), "threaded DSW invented edge ({u},{v})");
            }
        }
    }
}
