//! Random chordal graph generation — by construction, via reverse
//! perfect-elimination insertion: vertex `i` is attached to a random
//! clique of the graph built so far. Used by the property-test suite to
//! exercise the "noise-free data ⇒ no reduction" fixed-point claim
//! (§III: "Ideally, if the data is noise free, no reduction should
//! occur").

use casbn_graph::{Graph, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generate a random connected chordal graph with `n` vertices.
///
/// Construction: process vertices `0..n`; vertex `i > 0` picks a random
/// earlier vertex `a` and attaches to a random subset of the clique
/// `{a} ∪ (earlier neighbours of a)` of size at most `max_attach`.
/// Every vertex's earlier neighbourhood is then a clique, so the reverse
/// insertion order is a PEO and the graph is chordal by construction.
pub fn random_chordal(n: usize, max_attach: usize, seed: u64) -> Graph {
    assert!(max_attach >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 1..n as VertexId {
        let a = rng.gen_range(0..i);
        // candidates: a and its current neighbours; greedily keep a random
        // mutually-adjacent subset (a clique) of size ≤ max_attach. The
        // new vertex attaches to a clique, so the graph stays chordal.
        let mut pool: Vec<VertexId> = g.neighbors(a).to_vec();
        pool.push(a);
        let k = rng.gen_range(1..=max_attach.min(pool.len()));
        let mut chosen: Vec<VertexId> = vec![a];
        while chosen.len() < k {
            let c = pool[rng.gen_range(0..pool.len())];
            if !chosen.contains(&c) && chosen.iter().all(|&x| g.has_edge(x, c)) {
                chosen.push(c);
            } else {
                // give up quickly on unlucky draws; the subset stays a clique
                break;
            }
        }
        for &c in &chosen {
            g.add_edge(i, c);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsw::{maximal_chordal_subgraph, ChordalConfig};
    use crate::test_chordal::is_chordal;
    use casbn_graph::algo::connected_components;

    #[test]
    fn generated_graphs_are_chordal_and_connected() {
        for seed in 0..25 {
            for &(n, k) in &[(10usize, 2usize), (50, 4), (120, 6)] {
                let g = random_chordal(n, k, seed);
                assert!(is_chordal(&g), "n={n} k={k} seed={seed} not chordal");
                let (_, comps) = connected_components(&g);
                assert_eq!(comps, 1, "n={n} k={k} seed={seed} disconnected");
            }
        }
    }

    #[test]
    fn noise_free_fixed_point() {
        // §III: a noise-free (already chordal) network should pass through
        // the filter (almost) untouched. DSW guarantees a maximal chordal
        // subgraph; on chordal input the whole graph is the unique maximal
        // chordal subgraph of itself.
        for seed in 0..15 {
            let g = random_chordal(60, 4, seed);
            let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
            assert!(
                r.graph.same_edges(&g),
                "chordal input was reduced: {} -> {} edges (seed {seed})",
                g.m(),
                r.graph.m()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_chordal(80, 5, 7);
        let b = random_chordal(80, 5, 7);
        assert!(a.same_edges(&b));
        let c = random_chordal(80, 5, 8);
        assert!(!a.same_edges(&c));
    }

    #[test]
    fn max_attach_bounds_degreeish() {
        // attach=1 gives a tree
        let g = random_chordal(100, 1, 3);
        assert_eq!(g.m(), 99);
        assert!(is_chordal(&g));
    }
}
