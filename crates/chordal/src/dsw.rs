//! Maximal chordal subgraph extraction — the Dearing–Shier–Warner (DSW)
//! clique-candidate algorithm (Discrete Applied Mathematics 20(3), 1988),
//! as used by the paper's sequential and parallel filters.
//!
//! # Algorithm
//!
//! Vertices are *processed* one at a time. For every unprocessed vertex `u`
//! we maintain a candidate set `cand(u)` ⊆ processed vertices with the
//! invariant that **`cand(u)` is a clique in the subgraph built so far**.
//! When `u` is processed, the edges `{(u, w) : w ∈ cand(u)}` are added.
//! Because each vertex's earlier-processed neighbourhood is a clique, the
//! reverse processing order is a perfect elimination ordering, so the
//! result is chordal *by construction*.
//!
//! After processing `v` with clique `T(v) = cand(v)`, each unprocessed
//! neighbour `u` of `v` updates its candidate set:
//!
//! * if `cand(u) ⊆ T(v)` then `cand(u) ← cand(u) ∪ {v}` (still a clique:
//!   `v` is adjacent to all of `T(v)` in the new subgraph);
//! * otherwise `(cand(u) ∩ T(v)) ∪ {v}` is also a clique — adopt it when it
//!   is strictly larger than the current `cand(u)` (DSW's improvement rule).
//!
//! Cost: each update intersects two candidate cliques bounded by the max
//! degree `d`, giving the published `O(|E| · d)` bound.
//!
//! # Selection rule
//!
//! Which unprocessed vertex to pick next is a degree of freedom:
//!
//! * [`SelectionRule::MaxCardinality`] (default, DSW's original choice) —
//!   pick the vertex with the largest candidate clique, **ties broken by
//!   smallest label**. Tie-breaking and the choice of start vertex are
//!   exactly where the paper's *vertex ordering* experiments bite: the
//!   Natural / High-Degree / Low-Degree / RCM orderings relabel the graph,
//!   which perturbs the traversal ("the ones with the higher degree are
//!   *likely* to be processed first", §III-A) and hence the extracted
//!   subgraph — without changing its chordality guarantee.
//! * [`SelectionRule::LabelOrder`] — strictly ascending vertex label; a
//!   pure graph-traversal variant kept for ablation. It is cheaper per
//!   step but markedly worse at capturing dense modules, because a
//!   candidate clique seeded by a noise edge can block a module clique
//!   from ever forming (quantified in `benches/ablation.rs`).

use casbn_graph::{nbhood, norm_edge, Edge, Graph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Vertex selection rule for the DSW traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionRule {
    /// Process the vertex with the largest candidate set next
    /// (ties by smallest label). DSW's rule; the default.
    #[default]
    MaxCardinality,
    /// Process vertices in strictly ascending label order (ablation).
    LabelOrder,
}

/// Configuration for [`maximal_chordal_subgraph`].
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ChordalConfig {
    /// Vertex selection rule.
    pub selection: SelectionRule,
}

/// Abstract work counter fed to the distributed-simulation cost model:
/// counts candidate-set operations (the unit the `O(E·d)` bound is
/// expressed in).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkCounter {
    /// Candidate-set element operations performed.
    pub ops: u64,
}

/// Result of a maximal-chordal extraction.
#[derive(Clone, Debug)]
pub struct ChordalResult {
    /// The chordal subgraph (same vertex set as the input).
    pub graph: Graph,
    /// Processing order used (a reverse PEO of `graph`).
    pub order: Vec<VertexId>,
    /// Abstract work performed, for the scalability cost model.
    pub work: WorkCounter,
}

/// Reusable scratch state for [`maximal_chordal_subgraph_with`]: the
/// per-vertex candidate sets, selection heap and intersection buffers,
/// sized on first use and reused across extractions so steady-state
/// filtering (the incremental maintainer's regional rebuilds, repeated
/// benchmark passes) performs no heap allocation.
#[derive(Clone, Debug, Default)]
pub struct DswScratch {
    /// Per-vertex candidate cliques (sorted sets); buffers circulate
    /// through `tv` so capacity is never dropped.
    cand: Vec<Vec<VertexId>>,
    processed: Vec<bool>,
    /// Lazy max-heap of packed `(|cand|, label)` keys — see `pack_key`.
    heap: BinaryHeap<u64>,
    /// Clique of the vertex being processed.
    tv: Vec<VertexId>,
    /// Intersection buffer for the DSW improvement rule.
    inter: Vec<VertexId>,
}

/// Pack a selection key: candidate size in the high 32 bits, bit-flipped
/// label in the low 32. `u64` ordering is then exactly the lexicographic
/// (size ascending, label descending) order, so the heap max is the
/// largest candidate set with ties broken by **smallest** label — one
/// integer compare instead of a tuple compare per sift step.
#[inline]
fn pack_key(size: usize, v: VertexId) -> u64 {
    ((size as u64) << 32) | (u32::MAX - v) as u64
}

/// Unpack a selection key into `(size, label)`.
#[inline]
fn unpack_key(key: u64) -> (usize, VertexId) {
    ((key >> 32) as usize, u32::MAX - (key & 0xffff_ffff) as u32)
}

impl DswScratch {
    /// Scratch pre-sized for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut s = DswScratch::default();
        s.ensure(n);
        s
    }

    /// Grow (never shrink) to cover `n` vertices.
    fn ensure(&mut self, n: usize) {
        if self.cand.len() < n {
            self.cand.resize_with(n, Vec::new);
            self.processed.resize(n, false);
        }
    }
}

/// Extract a maximal chordal subgraph of `g` with the DSW algorithm.
///
/// The output graph spans the same vertex set and its edge set is a subset
/// of `g`'s. The reverse of `result.order` is a perfect elimination
/// ordering of the output, so `is_chordal` always holds (asserted in the
/// test-suite, including property tests).
///
/// Allocates fresh scratch per call; hot paths that extract repeatedly
/// should hold a [`DswScratch`] + [`ChordalResult`] and call
/// [`maximal_chordal_subgraph_with`] instead.
pub fn maximal_chordal_subgraph(g: &Graph, config: ChordalConfig) -> ChordalResult {
    let mut scratch = DswScratch::new(g.n());
    let mut result = ChordalResult {
        graph: Graph::new(g.n()),
        order: Vec::with_capacity(g.n()),
        work: WorkCounter::default(),
    };
    maximal_chordal_subgraph_with(g, config, &mut scratch, &mut result);
    result
}

/// Scratch-threaded DSW extraction: identical output and work accounting
/// to [`maximal_chordal_subgraph`], but every buffer (candidate sets,
/// selection heap, intersection scratch, the output graph's adjacency)
/// is reused from `scratch`/`result`, so repeated extractions reach a
/// zero-allocation steady state (asserted by `tests/alloc_regression.rs`
/// at the workspace root).
pub fn maximal_chordal_subgraph_with(
    g: &Graph,
    config: ChordalConfig,
    scratch: &mut DswScratch,
    result: &mut ChordalResult,
) {
    let n = g.n();
    scratch.ensure(n);
    let DswScratch {
        cand,
        processed,
        heap,
        tv,
        inter,
    } = scratch;
    for c in &mut cand[..n] {
        c.clear();
    }
    processed[..n].fill(false);
    result.graph.reset(n);
    result.order.clear();
    result.work = WorkCounter::default();
    let out = &mut result.graph;
    let order = &mut result.order;
    let work = &mut result.work;

    // Lazy max-heap keyed by packed (|cand|, smallest label). Candidate
    // sets only grow, so stale entries always carry a smaller key and are
    // skipped on pop; a vertex is pushed only when its set grows, so the
    // heap holds O(E) entries total and vertices with empty candidate
    // sets never enter it. An empty heap therefore means every
    // unprocessed vertex has an empty candidate set — a (0, label) tie
    // the original dense heap broke by smallest label — which the
    // ascending label cursor reproduces exactly.
    heap.clear();
    let mut pick_label = 0usize; // cursor for LabelOrder and empty-cand picks
    for _ in 0..n {
        let v = match config.selection {
            SelectionRule::LabelOrder => {
                while processed[pick_label] {
                    pick_label += 1;
                }
                pick_label as VertexId
            }
            SelectionRule::MaxCardinality => loop {
                match heap.pop() {
                    Some(key) => {
                        let (sz, u) = unpack_key(key);
                        if !processed[u as usize] && cand[u as usize].len() == sz {
                            break u;
                        }
                    }
                    None => {
                        while processed[pick_label] {
                            pick_label += 1;
                        }
                        break pick_label as VertexId;
                    }
                }
            },
        };
        processed[v as usize] = true;
        order.push(v);

        // clique of v, sorted: copy into the tv buffer rather than
        // swapping, so every candidate buffer stays with its vertex and
        // per-vertex capacity converges after one warm-up pass (a swap
        // would permute buffers across vertices every run)
        tv.clear();
        tv.extend_from_slice(&cand[v as usize]);
        cand[v as usize].clear();

        // materialise the candidate clique edges; the output adjacency is
        // never queried during construction, so append now + sort once
        for &w in tv.iter() {
            out.push_edge_unsorted(v, w);
        }
        work.ops += tv.len() as u64;

        // update unprocessed neighbours
        for &u in g.neighbors(v) {
            if processed[u as usize] {
                continue;
            }
            let cu = &mut cand[u as usize];
            work.ops += (cu.len() + 1) as u64;
            let mut grew = false;
            if nbhood::is_subset(cu, tv) {
                // cand(u) ∪ {v} stays a clique
                insert_sorted(cu, v);
                grew = true;
            } else {
                // adopt (cand(u) ∩ T(v)) ∪ {v} if strictly larger
                inter.clear();
                nbhood::intersect_for_each(cu, tv, |x| inter.push(x));
                work.ops += inter.len() as u64;
                if inter.len() + 1 > cu.len() {
                    cu.clear();
                    cu.extend_from_slice(inter);
                    insert_sorted(cu, v);
                    grew = true;
                }
            }
            if grew && config.selection == SelectionRule::MaxCardinality {
                heap.push(pack_key(cand[u as usize].len(), u));
            }
        }
    }
    out.sort_adjacency();
    // one shard write per extraction, not per candidate update: the hot
    // loop above already aggregates into the result's WorkCounter
    casbn_obs::counter_inc("dsw.extractions");
    casbn_obs::counter_add("dsw.ops", work.ops);
    casbn_obs::counter_add("dsw.retained_edges", out.m() as u64);
}

/// Re-offer every edge of `g` missing from `h` (in canonical edge order)
/// and keep those whose addition preserves chordality. Guarantees the
/// result is a *maximal* chordal subgraph of `g`.
///
/// Cost is `O(r · (n + m))` for `r` rejected edges — used by tests and
/// ablations, not by the benchmark hot paths.
pub fn repair_maximal(g: &Graph, h: &Graph) -> Graph {
    use crate::test_chordal::is_chordal;
    let mut out = h.clone();
    for (u, v) in g.edges() {
        if out.has_edge(u, v) {
            continue;
        }
        out.add_edge(u, v);
        if !is_chordal(&out) {
            out.remove_edge(u, v);
        }
    }
    out
}

/// The edges of `g` *not* kept by `h` (both over the same vertex set):
/// the noise removed by the filter, in the paper's interpretation.
pub fn removed_edges(g: &Graph, h: &Graph) -> Vec<Edge> {
    g.edges()
        .filter(|&(u, v)| !h.has_edge(u, v))
        .map(|(u, v)| norm_edge(u, v))
        .collect()
}

#[inline]
fn insert_sorted(v: &mut Vec<VertexId>, x: VertexId) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_chordal::is_chordal;
    use casbn_graph::generators::{barabasi_albert, gnm, planted_partition};

    fn assert_valid_chordal_subgraph(g: &Graph, h: &Graph) {
        assert_eq!(g.n(), h.n(), "vertex sets must match");
        for (u, v) in h.edges() {
            assert!(g.has_edge(u, v), "edge ({u},{v}) not in original");
        }
        assert!(is_chordal(h), "result must be chordal");
    }

    fn cycle(n: usize) -> Graph {
        let edges: Vec<_> = (0..n)
            .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn chordal_input_is_fixed_point_for_cliques() {
        for n in [3, 5, 8] {
            let g = clique(n);
            let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
            assert!(r.graph.same_edges(&g), "K{n} should be kept whole");
        }
    }

    #[test]
    fn tree_input_is_kept_whole() {
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        assert!(r.graph.same_edges(&g));
    }

    #[test]
    fn c4_drops_exactly_one_edge() {
        let g = cycle(4);
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        assert_eq!(r.graph.m(), 3);
        assert_valid_chordal_subgraph(&g, &r.graph);
    }

    #[test]
    fn cn_keeps_n_minus_one_edges() {
        // a maximal chordal subgraph of a chordless cycle is a spanning path
        for n in [5, 6, 10, 25] {
            let g = cycle(n);
            let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
            assert_eq!(r.graph.m(), n - 1, "C{n}");
            assert_valid_chordal_subgraph(&g, &r.graph);
        }
    }

    #[test]
    fn output_always_chordal_on_random_graphs() {
        for seed in 0..5 {
            let g = gnm(120, 360, seed);
            for sel in [SelectionRule::LabelOrder, SelectionRule::MaxCardinality] {
                let r = maximal_chordal_subgraph(&g, ChordalConfig { selection: sel });
                assert_valid_chordal_subgraph(&g, &r.graph);
            }
        }
    }

    #[test]
    fn order_is_reverse_peo() {
        let g = gnm(60, 150, 3);
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        let mut peo = r.order.clone();
        peo.reverse();
        assert!(crate::test_chordal::check_peo(&r.graph, &peo));
    }

    #[test]
    fn preserves_planted_cliques_substantially() {
        // hypothesis H0: dense modules survive chordal filtering
        let (g, truth) = planted_partition(200, 4, 10, 1.0, 80, 11);
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        for module in &truth.modules {
            let (orig_sg, _) = g.induced_subgraph(module);
            let (filt_sg, _) = r.graph.induced_subgraph(module);
            let keep = filt_sg.m() as f64 / orig_sg.m() as f64;
            // a clique is itself chordal; DSW retains most module edges
            assert!(
                keep > 0.5,
                "module retention {keep:.2} too low (kept {} of {})",
                filt_sg.m(),
                orig_sg.m()
            );
        }
    }

    #[test]
    fn label_order_sensitivity_exists() {
        // different labelings generally give different (sized) subgraphs —
        // this is the phenomenon H0b studies
        let g = gnm(100, 400, 9);
        let r1 = maximal_chordal_subgraph(&g, ChordalConfig::default());
        let perm: Vec<VertexId> = (0..100u32).map(|v| 99 - v).collect();
        let gp = g.permuted(&perm);
        let r2 = maximal_chordal_subgraph(&gp, ChordalConfig::default());
        // sizes may coincide but edge sets essentially never do; compare
        // unpermuted edge sets
        let back: Vec<VertexId> = perm.clone(); // reversal is an involution
        let r2_back = r2.graph.permuted(&back);
        assert!(
            !r1.graph.same_edges(&r2_back) || r1.graph.m() == g.m(),
            "reversing labels produced the identical subgraph (suspicious)"
        );
    }

    #[test]
    fn repair_maximal_is_maximal_on_small_graphs() {
        for seed in 0..4 {
            let g = gnm(24, 70, seed);
            let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
            let fixed = repair_maximal(&g, &r.graph);
            assert!(is_chordal(&fixed));
            // every remaining absent edge must break chordality when added
            for (u, v) in g.edges() {
                if fixed.has_edge(u, v) {
                    continue;
                }
                let mut t = fixed.clone();
                t.add_edge(u, v);
                assert!(!is_chordal(&t), "edge ({u},{v}) could still be added");
            }
        }
    }

    #[test]
    fn greedy_close_to_maximal() {
        // the greedy pass should capture the large majority of the edges the
        // repaired (truly maximal) subgraph has
        let g = barabasi_albert(150, 4, 2);
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        let fixed = repair_maximal(&g, &r.graph);
        let ratio = r.graph.m() as f64 / fixed.m() as f64;
        assert!(ratio > 0.75, "greedy/maximal ratio {ratio:.2}");
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_disparate_graphs() {
        // one scratch + result pair reused across graphs of different
        // sizes and densities must reproduce the fresh-allocation path
        // exactly (graph, order, and work counter)
        let mut scratch = DswScratch::new(0);
        let mut result = ChordalResult {
            graph: Graph::new(0),
            order: Vec::new(),
            work: WorkCounter::default(),
        };
        let graphs = [
            gnm(120, 360, 4),
            clique(9),
            cycle(17),
            Graph::new(5),
            gnm(60, 300, 8),
        ];
        for sel in [SelectionRule::MaxCardinality, SelectionRule::LabelOrder] {
            for g in &graphs {
                let cfg = ChordalConfig { selection: sel };
                let fresh = maximal_chordal_subgraph(g, cfg);
                maximal_chordal_subgraph_with(g, cfg, &mut scratch, &mut result);
                assert!(result.graph.same_edges(&fresh.graph));
                assert_eq!(result.order, fresh.order);
                assert_eq!(result.work, fresh.work);
            }
        }
    }

    #[test]
    fn work_counter_grows_with_graph() {
        let small = maximal_chordal_subgraph(&gnm(50, 100, 1), ChordalConfig::default());
        let large = maximal_chordal_subgraph(&gnm(500, 1500, 1), ChordalConfig::default());
        assert!(large.work.ops > small.work.ops);
    }

    #[test]
    fn removed_edges_partition_edge_set() {
        let g = gnm(80, 240, 5);
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        let removed = removed_edges(&g, &r.graph);
        assert_eq!(removed.len() + r.graph.m(), g.m());
    }

    #[test]
    fn empty_graph_ok() {
        let r = maximal_chordal_subgraph(&Graph::new(0), ChordalConfig::default());
        assert_eq!(r.graph.n(), 0);
        let r = maximal_chordal_subgraph(&Graph::new(4), ChordalConfig::default());
        assert_eq!(r.graph.m(), 0);
        assert_eq!(r.order.len(), 4);
    }

    #[test]
    fn max_cardinality_selection_also_valid() {
        let g = gnm(90, 270, 8);
        let r = maximal_chordal_subgraph(
            &g,
            ChordalConfig {
                selection: SelectionRule::MaxCardinality,
            },
        );
        assert_valid_chordal_subgraph(&g, &r.graph);
    }
}
