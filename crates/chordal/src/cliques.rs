//! Maximal cliques of a chordal graph, extracted from a perfect
//! elimination ordering.
//!
//! In a chordal graph the maximal cliques are exactly the sets
//! `{v} ∪ later-neighbours(v)` that are not contained in another such set
//! — at most `n` of them, found in linear time from a PEO. Cliques are
//! the "dense subgraphs" the paper's hypothesis H0 says the filter must
//! preserve, so this module gives the test-suite a direct way to compare
//! the clique structure of a network before and after filtering.

use crate::test_chordal::mcs_order;
use casbn_graph::{Graph, VertexId};

/// Maximal cliques of a **chordal** graph (behaviour on non-chordal input
/// is unspecified but safe: it returns the candidate sets that survive
/// the containment filter). Cliques are returned with sorted membership,
/// largest first.
pub fn maximal_cliques(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut order = mcs_order(g);
    order.reverse(); // PEO if chordal
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    // candidate clique per vertex: v + its later-ordered neighbours
    let mut cands: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for (i, &v) in order.iter().enumerate() {
        let mut c: Vec<VertexId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| pos[w as usize] > i)
            .collect();
        c.push(v);
        c.sort_unstable();
        cands.push(c);
    }
    // containment filter: a candidate is maximal iff no *other* candidate
    // strictly contains it. For chordal graphs it suffices to check the
    // candidate of each member with a later candidate-start, but the
    // straightforward O(Σ|C|²) pass is plenty for our sizes.
    cands.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut keep: Vec<Vec<VertexId>> = Vec::new();
    for c in cands {
        if !keep.iter().any(|k| is_subset(&c, k)) {
            keep.push(c);
        }
    }
    keep
}

/// The clique number ω(g) of a chordal graph.
pub fn clique_number(g: &Graph) -> usize {
    maximal_cliques(g).first().map(Vec::len).unwrap_or(0)
}

/// Fraction of `a`'s maximal-clique *edges* that survive in graph `h` —
/// the clique-preservation measure behind hypothesis H0.
pub fn clique_edge_retention(cliques: &[Vec<VertexId>], h: &Graph) -> f64 {
    let mut kept = 0usize;
    let mut total = 0usize;
    for c in cliques {
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                total += 1;
                if h.has_edge(c[i], c[j]) {
                    kept += 1;
                }
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        kept as f64 / total as f64
    }
}

fn is_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() || b[j] != x {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsw::{maximal_chordal_subgraph, ChordalConfig};
    use casbn_graph::generators::planted_partition;

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn single_clique() {
        let g = clique(5);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(clique_number(&g), 5);
    }

    #[test]
    fn tree_cliques_are_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 4, "each edge of a tree is a maximal clique");
        assert!(cs.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // the "bowtie on an edge": 0-1-2 and 1-2-3
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 2);
        assert!(cs.contains(&vec![0, 1, 2]));
        assert!(cs.contains(&vec![1, 2, 3]));
    }

    #[test]
    fn isolated_vertices_are_trivial_cliques() {
        let g = Graph::new(3);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 3);
        assert!(cs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn chordal_filter_preserves_clique_edges() {
        // H0's clique-preservation measure on a planted network
        let (g, _) = planted_partition(300, 6, 10, 0.6, 250, 5);
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        // cliques of the *filtered* (chordal) graph all survive in g
        let cliques = maximal_cliques(&r.graph);
        assert_eq!(clique_edge_retention(&cliques, &g), 1.0);
        // and the filter's own cliques cover a large share of g's triangles
        assert!(clique_number(&r.graph) >= 4);
    }

    #[test]
    fn clique_count_bounded_by_n() {
        let (g, _) = planted_partition(200, 4, 10, 0.7, 120, 9);
        let r = maximal_chordal_subgraph(&g, ChordalConfig::default());
        let cs = maximal_cliques(&r.graph);
        assert!(
            cs.len() <= r.graph.n(),
            "chordal graphs have ≤ n maximal cliques"
        );
    }
}
