//! Chordal graph machinery (paper §III).
//!
//! A graph is *chordal* (triangulated) when every cycle of length ≥ 4 has a
//! chord. The paper's sampling filter extracts a **maximal chordal
//! subgraph**: a chordal subgraph to which no further edge of the original
//! graph can be added without destroying chordality. Finding the *maximum*
//! chordal subgraph is NP-hard; Dearing, Shier & Warner (1988) give an
//! `O(|E|·d)` algorithm for a maximal one, which this crate implements.
//!
//! Contents:
//!
//! * [`is_chordal`] / [`mcs_order`] / [`check_peo`] — chordality testing via
//!   Maximum Cardinality Search and perfect-elimination-ordering
//!   verification (Tarjan & Yannakakis style).
//! * [`maximal_chordal_subgraph`] — the DSW clique-candidate algorithm. The
//!   vertex *selection rule* is configurable: strict label order (what the
//!   paper's ordering experiments assume) or max-cardinality.
//! * [`repair_maximal`] — optional post-pass that re-offers every rejected
//!   edge, guaranteeing maximality (used by the test-suite to quantify how
//!   close the greedy pass is to maximal).

pub mod cliques;
pub mod dsw;
pub mod generate;
pub mod lexbfs;
pub mod test_chordal;

pub use cliques::{clique_edge_retention, clique_number, maximal_cliques};
pub use dsw::{
    maximal_chordal_subgraph, maximal_chordal_subgraph_with, repair_maximal, ChordalConfig,
    ChordalResult, DswScratch, SelectionRule, WorkCounter,
};
pub use generate::random_chordal;
pub use lexbfs::{is_chordal_lexbfs, lexbfs_order};
pub use test_chordal::{
    check_peo, is_chordal, is_chordal_with, mcs_order, mcs_order_with, McsScratch,
};
