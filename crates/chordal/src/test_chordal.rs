//! Chordality testing: Maximum Cardinality Search + perfect elimination
//! ordering verification.
//!
//! Theory (Tarjan & Yannakakis 1984): a graph is chordal iff it admits a
//! *perfect elimination ordering* (PEO) — an order `v1 … vn` in which, for
//! every `vi`, the neighbours of `vi` that appear **later** in the order
//! form a clique. MCS visits vertices by maximum count of already-visited
//! neighbours; the *reverse* of an MCS visit order is a PEO iff the graph
//! is chordal. So: run MCS, reverse, verify.

use casbn_graph::{Graph, VertexId};

/// Reusable scratch for [`mcs_order_with`] / [`is_chordal_with`]: the
/// MCS weight array, visited flags, bucket queue and the PEO position
/// buffer, sized on first use and reused across calls (the streaming
/// differential suites run the chordality check after every batch).
#[derive(Clone, Debug, Default)]
pub struct McsScratch {
    weight: Vec<usize>,
    visited: Vec<bool>,
    buckets: Vec<Vec<VertexId>>,
    pos: Vec<usize>,
    order: Vec<VertexId>,
}

impl McsScratch {
    /// Scratch pre-sized for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut s = McsScratch::default();
        s.ensure(n);
        s
    }

    /// Grow (never shrink) to cover `n` vertices.
    fn ensure(&mut self, n: usize) {
        if self.weight.len() < n {
            self.weight.resize(n, 0);
            self.visited.resize(n, false);
            self.pos.resize(n, 0);
        }
        if self.buckets.len() < n.max(1) + 1 {
            self.buckets.resize_with(n.max(1) + 1, Vec::new);
        }
    }
}

/// Maximum Cardinality Search visit order.
///
/// Returns the sequence of vertices in visit order. Ties are broken by
/// smallest vertex id, and new components are started at the smallest
/// unvisited id, so the result is deterministic. Allocates fresh scratch;
/// repeated callers should use [`mcs_order_with`].
pub fn mcs_order(g: &Graph) -> Vec<VertexId> {
    let mut order = Vec::with_capacity(g.n());
    mcs_order_with(g, &mut McsScratch::new(g.n()), &mut order);
    order
}

/// Scratch-threaded MCS: identical order to [`mcs_order`], written into
/// `order` (cleared first) with every working buffer reused from
/// `scratch`.
pub fn mcs_order_with(g: &Graph, scratch: &mut McsScratch, order: &mut Vec<VertexId>) {
    let n = g.n();
    scratch.ensure(n);
    let weight = &mut scratch.weight;
    let visited = &mut scratch.visited;
    let buckets = &mut scratch.buckets;
    weight[..n].fill(0);
    visited[..n].fill(false);
    for b in &mut buckets[..n.max(1) + 1] {
        b.clear();
    }
    order.clear();

    // Bucket queue over weights; lazily cleaned.
    for v in 0..n as VertexId {
        buckets[0].push(v);
    }
    // buckets[0] holds ids ascending if we pop from the front; keep an index
    let mut max_w = 0usize;
    let mut popped = 0usize;
    while popped < n {
        // find current max bucket with an unvisited vertex of matching weight
        let v = loop {
            while max_w > 0 && buckets[max_w].is_empty() {
                max_w -= 1;
            }
            // pick the smallest id in the bucket that is still current
            let bucket = &mut buckets[max_w];
            // remove stale entries (visited or weight changed)
            let mut best: Option<(usize, VertexId)> = None;
            let mut idx = 0;
            while idx < bucket.len() {
                let cand = bucket[idx];
                if visited[cand as usize] || weight[cand as usize] != max_w {
                    bucket.swap_remove(idx);
                    continue;
                }
                match best {
                    Some((_, b)) if b <= cand => {}
                    _ => best = Some((idx, cand)),
                }
                idx += 1;
            }
            if let Some((i, v)) = best {
                bucket.swap_remove(i);
                break v;
            }
            if max_w == 0 {
                // all weight-0 entries were stale; that can't happen while
                // unvisited vertices remain, because weights only grow and
                // entries are re-pushed on growth
                unreachable!("MCS bucket queue exhausted early");
            }
            max_w -= 1;
        };
        visited[v as usize] = true;
        order.push(v);
        popped += 1;
        for &w in g.neighbors(v) {
            if !visited[w as usize] {
                weight[w as usize] += 1;
                let nw = weight[w as usize];
                buckets[nw].push(w);
                if nw > max_w {
                    max_w = nw;
                }
            }
        }
    }
}

/// Verify that `order` (eliminated-first first) is a perfect elimination
/// ordering of `g`: for each vertex, its later-ordered neighbours must form
/// a clique. Uses the standard parent-subset trick: it suffices that for
/// each `v`, `later(v) \ {parent}` is adjacent to `parent`, where `parent`
/// is the earliest later-ordered neighbour.
pub fn check_peo(g: &Graph, order: &[VertexId]) -> bool {
    check_peo_with(g, order, &mut vec![0usize; g.n()])
}

/// [`check_peo`] with a caller-provided position buffer (`pos.len() >=
/// g.n()`), the allocation-free variant [`is_chordal_with`] uses.
fn check_peo_with(g: &Graph, order: &[VertexId], pos: &mut [usize]) -> bool {
    let n = g.n();
    assert_eq!(order.len(), n, "order must cover all vertices");
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    for (i, &v) in order.iter().enumerate() {
        let mut parent: Option<VertexId> = None;
        for &w in g.neighbors(v) {
            if pos[w as usize] > i {
                match parent {
                    None => parent = Some(w),
                    Some(p) if pos[w as usize] < pos[p as usize] => parent = Some(w),
                    _ => {}
                }
            }
        }
        let Some(p) = parent else { continue };
        for &w in g.neighbors(v) {
            if pos[w as usize] > i && w != p && !g.has_edge(p, w) {
                return false;
            }
        }
    }
    true
}

/// Whether `g` is chordal.
pub fn is_chordal(g: &Graph) -> bool {
    is_chordal_with(g, &mut McsScratch::new(g.n()))
}

/// [`is_chordal`] with reusable scratch: the per-batch chordality gates
/// of the streaming differential suites call this in a loop without
/// re-allocating the MCS bucket queue.
pub fn is_chordal_with(g: &Graph, scratch: &mut McsScratch) -> bool {
    scratch.ensure(g.n());
    let mut order = std::mem::take(&mut scratch.order);
    mcs_order_with(g, scratch, &mut order);
    order.reverse(); // reverse MCS visit order is a PEO iff chordal
    let ok = check_peo_with(g, &order, &mut scratch.pos);
    scratch.order = order;
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbn_graph::generators::{caveman, gnm};

    fn cycle(n: usize) -> Graph {
        let edges: Vec<_> = (0..n)
            .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    fn clique(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn empty_and_singleton_are_chordal() {
        assert!(is_chordal(&Graph::new(0)));
        assert!(is_chordal(&Graph::new(1)));
        assert!(is_chordal(&Graph::new(5))); // edgeless
    }

    #[test]
    fn trees_are_chordal() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        assert!(is_chordal(&g));
    }

    #[test]
    fn cliques_are_chordal() {
        for n in 2..8 {
            assert!(is_chordal(&clique(n)), "K{n}");
        }
    }

    #[test]
    fn triangle_is_chordal_c4_is_not() {
        assert!(is_chordal(&cycle(3)));
        assert!(!is_chordal(&cycle(4)));
        assert!(!is_chordal(&cycle(5)));
        assert!(!is_chordal(&cycle(9)));
    }

    #[test]
    fn c4_with_chord_is_chordal() {
        let mut g = cycle(4);
        g.add_edge(0, 2);
        assert!(is_chordal(&g));
    }

    #[test]
    fn c6_needs_all_chords_to_triangulate() {
        let mut g = cycle(6);
        g.add_edge(0, 2); // still has 0-2-3-4-5 cycle of length 5
        assert!(!is_chordal(&g));
        g.add_edge(0, 3);
        assert!(!is_chordal(&g)); // 0-3-4-5 is a C4
        g.add_edge(0, 4);
        assert!(is_chordal(&g)); // fan triangulation complete
    }

    #[test]
    fn caveman_is_chordal() {
        // cliques joined by bridge edges in a ring: the ring of bridges
        // forms one long cycle -> NOT chordal with >2 cliques
        assert!(!is_chordal(&caveman(4, 4, 0)));
        // but a 1-clique "ring" is a clique with a self-bridge suppressed
        assert!(is_chordal(&caveman(1, 5, 0)));
    }

    #[test]
    fn disconnected_chordality() {
        // triangle + C4, disjoint: not chordal because of the C4
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6), (6, 3)]);
        assert!(!is_chordal(&g));
        // triangle + path: chordal
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]);
        assert!(is_chordal(&g));
    }

    #[test]
    fn mcs_order_is_permutation() {
        let g = gnm(80, 200, 13);
        let order = mcs_order(&g);
        let mut seen = [false; 80];
        for v in order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn check_peo_detects_bad_order_on_chordal_graph() {
        // K1,3 star: center last is a valid PEO; center first is also fine
        // Use a "gem"-like graph where a wrong order fails:
        // path 0-1-2 with both endpoints tied to 3 => C4 0-1-2-3? that's a
        // 4-cycle (non-chordal). Use a 2-tree instead.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]);
        assert!(is_chordal(&g));
        // eliminating 0 first: later nbrs {1,2} adjacent -> ok; a valid PEO
        assert!(check_peo(&g, &[0, 3, 1, 2]));
        // eliminating 1 first: later nbrs {0,2,3}; needs 0-3 edge -> absent
        assert!(!check_peo(&g, &[1, 0, 2, 3]));
    }

    #[test]
    fn random_sparse_graphs_mostly_nonchordal() {
        // sanity: a random graph with many independent cycles is almost
        // surely non-chordal
        let g = gnm(100, 300, 7);
        assert!(!is_chordal(&g));
    }
}
