//! Lexicographic breadth-first search — the second classical linear-time
//! chordality machine (Rose–Tarjan–Lueker 1976), provided alongside MCS
//! so the two recognisers can cross-validate each other in the test suite
//! and property tests.
//!
//! Lex-BFS visits vertices by lexicographically largest *label*, where a
//! vertex's label is the (descending) sequence of visit times of its
//! already-visited neighbours. Like MCS, the reverse of a Lex-BFS visit
//! order is a perfect elimination ordering iff the graph is chordal.

use casbn_graph::{Graph, VertexId};

/// Lex-BFS visit order via partition refinement (O(n + m)).
///
/// Ties are broken by smallest vertex id; each new component starts at
/// its smallest unvisited id, so the result is deterministic.
pub fn lexbfs_order(g: &Graph) -> Vec<VertexId> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    // Partition refinement over a doubly linked list of cells, each cell a
    // set of vertices with identical labels, ordered by label rank.
    // Simple Vec-of-Vec implementation: cells[i] = sorted vertex list.
    let mut cells: Vec<Vec<VertexId>> = vec![(0..n as VertexId).collect()];
    let mut cell_of: Vec<usize> = vec![0; n];
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);

    while order.len() < n {
        // first nonempty cell; its first (smallest-id) vertex is next
        let ci = cells
            .iter()
            .position(|c| !c.is_empty())
            .expect("vertices remain");
        let v = cells[ci][0];
        cells[ci].remove(0);
        visited[v as usize] = true;
        order.push(v);

        // split every cell containing an unvisited neighbour of v into
        // (neighbours, non-neighbours), neighbours first
        let mut split: Vec<(usize, Vec<VertexId>)> = Vec::new();
        for &w in g.neighbors(v) {
            if !visited[w as usize] {
                let c = cell_of[w as usize];
                match split.iter_mut().find(|(ci2, _)| *ci2 == c) {
                    Some((_, list)) => list.push(w),
                    None => split.push((c, vec![w])),
                }
            }
        }
        // apply splits from the highest cell index down so insertions
        // don't invalidate recorded indices
        split.sort_by_key(|&(c, _)| std::cmp::Reverse(c));
        for (c, mut movers) in split {
            movers.sort_unstable();
            cells[c].retain(|x| !movers.contains(x));
            // insert the neighbour cell *before* cell c
            cells.insert(c, movers);
            // fix cell_of for everything at or after c
            for (idx, cell) in cells.iter().enumerate().skip(c) {
                for &x in cell {
                    cell_of[x as usize] = idx;
                }
            }
        }
    }
    order
}

/// Whether `g` is chordal, by Lex-BFS (cross-check for
/// [`crate::test_chordal::is_chordal`]).
pub fn is_chordal_lexbfs(g: &Graph) -> bool {
    let mut order = lexbfs_order(g);
    order.reverse();
    crate::test_chordal::check_peo(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_chordal::is_chordal;
    use casbn_graph::generators::gnm;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<_> = (0..n)
            .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn order_is_permutation() {
        let g = gnm(60, 150, 3);
        let order = lexbfs_order(&g);
        let mut seen = [false; 60];
        for v in order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn agrees_with_mcs_on_chordality() {
        for seed in 0..20 {
            let g = gnm(24, 40 + (seed as usize % 30), seed);
            assert_eq!(
                is_chordal_lexbfs(&g),
                is_chordal(&g),
                "recognisers disagree on seed {seed}"
            );
        }
    }

    #[test]
    fn classifies_canonical_graphs() {
        assert!(is_chordal_lexbfs(&cycle(3)));
        assert!(!is_chordal_lexbfs(&cycle(4)));
        assert!(!is_chordal_lexbfs(&cycle(7)));
        let mut g = cycle(4);
        g.add_edge(0, 2);
        assert!(is_chordal_lexbfs(&g));
    }

    #[test]
    fn empty_graph() {
        assert!(lexbfs_order(&Graph::new(0)).is_empty());
        assert!(is_chordal_lexbfs(&Graph::new(3)));
    }

    #[test]
    fn starts_at_smallest_id() {
        let g = gnm(30, 60, 9);
        assert_eq!(lexbfs_order(&g)[0], 0);
    }
}
