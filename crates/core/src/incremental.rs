//! Incremental maintenance of a chordal subgraph under edge deltas — the
//! streaming counterpart of the batch DSW filter.
//!
//! The batch pipeline re-runs Dearing–Shier–Warner from scratch whenever
//! the network changes. [`IncrementalChordal`] instead maintains a chordal
//! subgraph `H` of a live [`DeltaGraph`] network across
//! [`EdgeDelta`] batches:
//!
//! * **Insertions** use an *exact local admissibility test*. For a chordal
//!   `H` and a non-adjacent pair `(u, v)`, `H + uv` is chordal **iff** the
//!   retained common neighbourhood `S = N_H(u) ∩ N_H(v)` separates `u`
//!   from `v` in `H`: every chordless `u`–`v` path must pass through a
//!   common neighbour `w`, and a chordless path through a vertex adjacent
//!   to both endpoints is forced to be exactly `u`–`w`–`v`; conversely a
//!   `u`–`v` path avoiding `S` yields a chordless path of length ≥ 3 and
//!   hence a chordless cycle of length ≥ 4 through `uv`. The test is one
//!   bounded BFS from `u` with `S` blocked — regional, not global.
//! * **Deletions** can break chordality (removing one edge of `K₄` twice
//!   leaves `C₄`), so a batch containing deletions triggers an *amortized
//!   regional DSW rebuild*: the `H`-components touched by deleted edges
//!   are re-extracted from the current network snapshot with
//!   [`maximal_chordal_subgraph_with`], which also re-admits network edges a
//!   greedy earlier decision had rejected. Untouched components keep
//!   their edges, and a disjoint union of chordal graphs is chordal.
//! * **Rejections** trigger the same amortized regional rebuild: a
//!   rejected offer is evidence the greedy arrival-order subgraph has
//!   diverged from what a from-scratch extraction would pick in that
//!   region, so the touched component is re-extracted at the end of the
//!   batch. This is what keeps the incremental retained-edge count
//!   within a couple of percent of batch DSW (the differential suite
//!   pins 2%): components whose offers were all accepted hold *every*
//!   live edge (nothing to diverge from), and components that saw a
//!   rejection are re-synced to the exact per-component DSW result.
//!
//! Every neighbourhood intersection, BFS step and rebuild op is charged
//! to a [`casbn_distsim`] LogP clock, so the simulated cost of
//! maintenance is directly comparable against a from-scratch
//! tiled-Pearson + DSW recompute (the streaming perf-baseline workloads
//! record both).

use casbn_chordal::{
    maximal_chordal_subgraph_with, ChordalConfig, ChordalResult, DswScratch, WorkCounter,
};
use casbn_distsim::{CostModel, SimClock};
use casbn_graph::{nbhood, DeltaGraph, EdgeDelta, Graph, NeighborhoodScratch, VertexId};
use serde::{Deserialize, Serialize};

/// Per-batch maintenance statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IncBatchStats {
    /// Offered insertions retained at the end of the batch (directly
    /// admitted or re-admitted by a regional rebuild).
    pub inserted: usize,
    /// Offered insertions not retained at the end of the batch.
    pub rejected: usize,
    /// Edges removed from the chordal subgraph by network deletions.
    pub removed: usize,
    /// Vertices covered by regional DSW rebuilds (deletion- or
    /// rejection-triggered).
    pub rebuild_region: usize,
    /// Abstract ops charged to the simulated clock for this batch.
    pub ops: u64,
    /// Simulated seconds consumed by this batch.
    pub sim_seconds: f64,
}

/// Incrementally maintained chordal subgraph of a dynamic network.
///
/// All working state (mark scratch, BFS queue, region buffers, the local
/// rebuild graph and its DSW scratch) lives in the struct and is reused
/// across batches, so steady-state maintenance performs no heap
/// allocation beyond capacity ratcheting on the largest region seen.
#[derive(Clone, Debug)]
pub struct IncrementalChordal {
    h: Graph,
    config: ChordalConfig,
    cost: CostModel,
    clock: SimClock,
    ops_total: u64,
    /// Epoch-mark + stack scratch for admissibility BFS and region walks
    /// (the scratch's u32 stack is the FIFO queue storage, drained with a
    /// cursor so order matches the original `VecDeque` traversal and the
    /// op counts stay identical).
    nb: NeighborhoodScratch,
    /// Rebuild-region vertex buffer (sorted).
    region: Vec<VertexId>,
    /// Global id → local id inside the current region (valid for marked).
    lpos: Vec<u32>,
    /// Neighbour-list buffer for [`DeltaGraph::neighbors_into`].
    nbuf: Vec<VertexId>,
    /// Reusable local-subgraph for regional rebuilds.
    local: Graph,
    /// DSW scratch + result reused by every regional rebuild.
    dsw: DswScratch,
    dsw_result: ChordalResult,
}

impl IncrementalChordal {
    /// Empty chordal subgraph over `n` vertices with the default DSW
    /// configuration and cost model.
    pub fn new(n: usize) -> Self {
        Self::with_config(n, ChordalConfig::default(), CostModel::default())
    }

    /// Empty chordal subgraph with explicit DSW configuration and cost
    /// model.
    pub fn with_config(n: usize, config: ChordalConfig, cost: CostModel) -> Self {
        IncrementalChordal {
            h: Graph::new(n),
            config,
            cost,
            clock: SimClock::default(),
            ops_total: 0,
            nb: NeighborhoodScratch::new(n),
            region: Vec::new(),
            lpos: vec![0; n],
            nbuf: Vec::new(),
            local: Graph::new(0),
            dsw: DswScratch::default(),
            dsw_result: ChordalResult {
                graph: Graph::new(0),
                order: Vec::new(),
                work: WorkCounter::default(),
            },
        }
    }

    /// Reset to the empty subgraph and a zeroed clock, **retaining every
    /// scratch buffer and adjacency capacity** — a long-lived maintainer
    /// can re-sync from a fresh stream (or replay one, as the perf
    /// baseline's `inc-chordal-yng` workload does) without re-paying its
    /// allocations.
    pub fn reset(&mut self) {
        self.h.clear_edges();
        self.clock = SimClock::default();
        self.ops_total = 0;
    }

    /// Rebuild a maintainer from checkpointed state: the chordal
    /// subgraph `h`, the DSW configuration, the cost model, and the
    /// clock/op counters accumulated so far. The scratch buffers are
    /// re-created empty — they are behaviour-neutral (the scratch-reuse
    /// output-identity is pinned by the PR 4 differential suites), so a
    /// resumed maintainer replays future deltas bit-identically to one
    /// that never stopped.
    pub fn from_state(
        h: Graph,
        config: ChordalConfig,
        cost: CostModel,
        sim_seconds: f64,
        ops_total: u64,
    ) -> Self {
        let mut inc = Self::with_config(h.n(), config, cost);
        inc.h = h;
        inc.clock.sync_to(sim_seconds);
        inc.ops_total = ops_total;
        inc
    }

    /// The DSW configuration in force.
    #[inline]
    pub fn config(&self) -> ChordalConfig {
        self.config
    }

    /// The cost model the maintenance clock is charged under.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The maintained chordal subgraph.
    #[inline]
    pub fn subgraph(&self) -> &Graph {
        &self.h
    }

    /// Edges currently retained.
    #[inline]
    pub fn retained_edges(&self) -> usize {
        self.h.m()
    }

    /// Total simulated seconds charged since construction.
    #[inline]
    pub fn sim_seconds(&self) -> f64 {
        self.clock.now()
    }

    /// Total abstract ops charged since construction.
    #[inline]
    pub fn total_ops(&self) -> u64 {
        self.ops_total
    }

    /// Apply one delta batch. `net` must be the network **after** the
    /// delta was applied (the maintained subgraph stays a subgraph of
    /// `net`). Deletions are processed first (with a regional rebuild
    /// when any hit the subgraph), then insertions in delta order.
    pub fn apply(&mut self, delta: &EdgeDelta, net: &DeltaGraph) -> IncBatchStats {
        assert_eq!(self.h.n(), net.n(), "vertex count drifted from network");
        let mut stats = IncBatchStats::default();
        // one op of per-batch bookkeeping, so even an empty delta has a
        // defined (tiny) simulated cost
        let mut ops = 1u64;

        // 1. deletions: drop from H, remember touched endpoints
        let mut dirty: Vec<VertexId> = Vec::new();
        for &(u, v) in &delta.removes {
            ops += 1;
            if self.h.remove_edge(u, v) {
                stats.removed += 1;
                dirty.push(u);
                dirty.push(v);
            }
        }

        // 2. deletion-triggered amortized regional rebuild
        if !dirty.is_empty() {
            stats.rebuild_region = self.rebuild_regions(&dirty, net, &mut ops);
        }

        // 3. insertions under the exact local admissibility test;
        //    rejections queue their region for the amortized rebuild
        let mut rejected_at: Vec<VertexId> = Vec::new();
        for &(u, v) in &delta.inserts {
            debug_assert!(net.has_edge(u, v), "insert ({u},{v}) missing from net");
            ops += 1;
            if self.h.has_edge(u, v) {
                continue; // already re-admitted by the deletion rebuild
            }
            if self.admissible(u, v, &mut ops) {
                self.h.add_edge(u, v);
            } else {
                // endpoints of a rejected edge are H-connected, so one
                // seed identifies the component
                rejected_at.push(u);
            }
        }

        // 4. rejection-triggered amortized regional rebuild: re-sync the
        //    diverged components to their from-scratch DSW extraction
        if !rejected_at.is_empty() {
            stats.rebuild_region += self.rebuild_regions(&rejected_at, net, &mut ops);
        }

        // final accounting: what this batch's offers look like now
        for &(u, v) in &delta.inserts {
            if self.h.has_edge(u, v) {
                stats.inserted += 1;
            } else {
                stats.rejected += 1;
            }
        }

        self.ops_total += ops;
        let before = self.clock.now();
        self.clock.charge_ops(&self.cost, ops);
        stats.ops = ops;
        stats.sim_seconds = self.clock.now() - before;
        casbn_obs::counter_inc("inc_chordal.batches");
        casbn_obs::counter_add("inc_chordal.inserted", stats.inserted as u64);
        casbn_obs::counter_add("inc_chordal.rejected", stats.rejected as u64);
        casbn_obs::counter_add("inc_chordal.removed", stats.removed as u64);
        stats
    }

    /// Exact admissibility of adding `(u, v)` to the chordal `H`: `true`
    /// iff the common neighbourhood `S = N_H(u) ∩ N_H(v)` separates `u`
    /// from `v` (vertices in other components are trivially separated).
    fn admissible(&mut self, u: VertexId, v: VertexId, ops: &mut u64) -> bool {
        let h = &self.h;
        let nb = &mut self.nb;
        // mark S (adaptive intersection of the two adjacency lists)
        nb.begin_marks();
        let (nu, nv) = (h.neighbors(u), h.neighbors(v));
        *ops += (nu.len() + nv.len()) as u64 + 1;
        nbhood::intersect_for_each(nu, nv, |w| nb.mark(w));
        // BFS from u avoiding S; admissible iff v is unreachable. The
        // queue is a Vec drained by cursor — same FIFO order (and hence
        // the same op count at early exit) as a VecDeque.
        nb.mark(u); // reuse the epoch: S-marked counts as visited
        let mut queue = std::mem::take(&mut nb.stack);
        queue.clear();
        queue.push(u);
        let mut head = 0usize;
        let mut admissible = true;
        'bfs: while head < queue.len() {
            let x = queue[head];
            head += 1;
            for &w in h.neighbors(x) {
                *ops += 1;
                if w == v {
                    admissible = false;
                    break 'bfs;
                }
                if !nb.is_marked(w) {
                    nb.mark(w);
                    queue.push(w);
                }
            }
        }
        casbn_obs::counter_inc("inc_chordal.admissibility_tests");
        // queue length = BFS vertices visited (including at early exit)
        casbn_obs::record_hist("inc_chordal.bfs_visited", queue.len() as u64);
        nb.stack = queue;
        admissible
    }

    /// Re-extract the `H`-components containing `seeds` from the current
    /// network. Returns the number of vertices in the rebuilt region.
    fn rebuild_regions(&mut self, seeds: &[VertexId], net: &DeltaGraph, ops: &mut u64) -> usize {
        // region = union of H-components of the seed vertices (so no H
        // edge crosses the region boundary and the disjoint-union
        // argument applies)
        let nb = &mut self.nb;
        let region = &mut self.region;
        nb.begin_marks();
        region.clear();
        let mut queue = std::mem::take(&mut nb.stack);
        queue.clear();
        for &s in seeds {
            if nb.is_marked(s) {
                continue;
            }
            nb.mark(s);
            region.push(s);
            let mut head = queue.len();
            queue.push(s);
            while head < queue.len() {
                let x = queue[head];
                head += 1;
                for &w in self.h.neighbors(x) {
                    *ops += 1;
                    if !nb.is_marked(w) {
                        nb.mark(w);
                        region.push(w);
                        queue.push(w);
                    }
                }
            }
        }
        nb.stack = queue;
        region.sort_unstable();

        // local-id network subgraph induced by the region; the region
        // vertices are exactly the marked ones, so global → local is a
        // mark probe + dense-array read instead of a tree lookup
        for (i, &v) in region.iter().enumerate() {
            self.lpos[v as usize] = i as u32;
        }
        self.local.reset(region.len());
        for &v in region.iter() {
            net.neighbors_into(v, &mut self.nbuf);
            for &w in &self.nbuf {
                *ops += 1;
                if v < w && nb.is_marked(w) {
                    self.local
                        .push_edge_unsorted(self.lpos[v as usize], self.lpos[w as usize]);
                }
            }
        }
        self.local.sort_adjacency();

        // drop H inside the region (component-closed, so a bulk clear
        // removes exactly the region's edges), replace with a fresh DSW
        // extraction from the reused scratch. The op charge matches the
        // per-edge removal loop this replaces: each region edge was
        // scanned once at its lower endpoint (the upper endpoint's list
        // had already lost it), i.e. one op per region edge.
        let mut region_deg2 = 0u64;
        for &v in region.iter() {
            region_deg2 += self.h.degree(v) as u64;
        }
        *ops += region_deg2 / 2;
        self.h.clear_component_edges(region);
        maximal_chordal_subgraph_with(
            &self.local,
            self.config,
            &mut self.dsw,
            &mut self.dsw_result,
        );
        let r = &self.dsw_result;
        *ops += r.work.ops;
        for (lu, lv) in r.graph.edges() {
            self.h.add_edge(region[lu as usize], region[lv as usize]);
        }
        casbn_obs::counter_inc("inc_chordal.regions_rebuilt");
        casbn_obs::counter_add("inc_chordal.rebuild_vertices", region.len() as u64);
        region.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbn_chordal::is_chordal;
    use casbn_graph::generators::{gnm, planted_partition};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Feed a full graph as one insert batch.
    fn delta_of(g: &Graph) -> EdgeDelta {
        EdgeDelta {
            inserts: g.edge_vec(),
            removes: vec![],
        }
    }

    #[test]
    fn empty_and_single_batch_chordal() {
        let mut inc = IncrementalChordal::new(0);
        let net = DeltaGraph::new(0);
        let s = inc.apply(&EdgeDelta::default(), &net);
        assert_eq!(s.inserted + s.rejected + s.removed, 0);

        let g = gnm(60, 180, 3);
        let mut net = DeltaGraph::new(60);
        let delta = delta_of(&g);
        net.apply(&delta);
        let mut inc = IncrementalChordal::new(60);
        let s = inc.apply(&delta, &net);
        assert!(is_chordal(inc.subgraph()));
        assert_eq!(s.inserted, inc.retained_edges());
        assert_eq!(s.inserted + s.rejected, g.m());
        assert!(inc.sim_seconds() > 0.0);
        assert!(inc.total_ops() > 0);
    }

    #[test]
    fn accepts_cliques_wholesale() {
        // building a clique edge by edge must never reject
        let n = 12u32;
        let mut net = DeltaGraph::new(n as usize);
        let mut inc = IncrementalChordal::new(n as usize);
        for u in 0..n {
            for v in (u + 1)..n {
                let d = EdgeDelta {
                    inserts: vec![(u, v)],
                    removes: vec![],
                };
                net.apply(&d);
                let s = inc.apply(&d, &net);
                assert_eq!(s.rejected, 0, "clique edge ({u},{v}) rejected");
            }
        }
        assert_eq!(inc.retained_edges(), (n * (n - 1) / 2) as usize);
        assert!(is_chordal(inc.subgraph()));
    }

    #[test]
    fn rejects_the_closing_edge_of_a_long_cycle() {
        // path 0-1-2-3 then edge (0,3) would close C4
        let mut net = DeltaGraph::new(4);
        let mut inc = IncrementalChordal::new(4);
        let path = EdgeDelta {
            inserts: vec![(0, 1), (1, 2), (2, 3)],
            removes: vec![],
        };
        net.apply(&path);
        inc.apply(&path, &net);
        let close = EdgeDelta {
            inserts: vec![(0, 3)],
            removes: vec![],
        };
        net.apply(&close);
        let s = inc.apply(&close, &net);
        // the offer fails the admissibility test, which triggers the
        // regional re-sync; the from-scratch extraction again keeps 3 of
        // the C4's 4 edges (possibly a different 3)
        assert!(s.rebuild_region > 0, "rejection must trigger a rebuild");
        assert_eq!(inc.retained_edges(), 3);
        assert!(is_chordal(inc.subgraph()));
        let dropped: Vec<_> = net
            .snapshot()
            .edges()
            .filter(|&(u, v)| !inc.subgraph().has_edge(u, v))
            .collect();
        assert_eq!(dropped.len(), 1, "exactly one C4 edge stays out");
    }

    #[test]
    fn triangle_closing_edge_is_admissible() {
        let mut net = DeltaGraph::new(3);
        let mut inc = IncrementalChordal::new(3);
        for d in [
            EdgeDelta {
                inserts: vec![(0, 1), (1, 2)],
                removes: vec![],
            },
            EdgeDelta {
                inserts: vec![(0, 2)],
                removes: vec![],
            },
        ] {
            net.apply(&d);
            let s = inc.apply(&d, &net);
            assert_eq!(s.rejected, 0);
            assert_eq!(s.rebuild_region, 0, "accepted offers never rebuild");
        }
        assert_eq!(inc.retained_edges(), 3);
    }

    #[test]
    fn separator_test_is_exact_not_just_common_neighbor() {
        // H: u=0, v=1, a=2, b=3, c=4 with edges ua, av, ub, bc, cv, ab, ac
        // (chordal). S = {a} does NOT separate u from v (u-b-c-v avoids a),
        // so adding uv must be rejected — a "nonempty common neighborhood"
        // heuristic would wrongly accept it.
        let edges = [(0, 2), (1, 2), (0, 3), (2, 3), (2, 4), (3, 4), (1, 4)];
        let mut net = DeltaGraph::new(5);
        let mut inc = IncrementalChordal::new(5);
        let d = EdgeDelta {
            inserts: edges.to_vec(),
            removes: vec![],
        };
        net.apply(&d);
        let s = inc.apply(&d, &net);
        assert_eq!(s.rejected, 0, "setup graph is chordal edge by edge");
        assert!(is_chordal(inc.subgraph()));
        let uv = EdgeDelta {
            inserts: vec![(0, 1)],
            removes: vec![],
        };
        net.apply(&uv);
        let s = inc.apply(&uv, &net);
        // uv would create the chordless u-b-c-v-u, so the exact test must
        // reject it and trigger the re-sync — a "nonempty common
        // neighborhood" heuristic would have accepted it outright
        assert!(s.rebuild_region > 0, "exact test must reject (0,1)");
        assert!(is_chordal(inc.subgraph()));
        assert!(inc.retained_edges() < net.m(), "net is not chordal");
    }

    #[test]
    fn cross_component_edges_are_always_admissible() {
        let mut net = DeltaGraph::new(6);
        let mut inc = IncrementalChordal::new(6);
        let d = EdgeDelta {
            inserts: vec![(0, 1), (1, 2), (3, 4), (4, 5)],
            removes: vec![],
        };
        net.apply(&d);
        inc.apply(&d, &net);
        let bridge = EdgeDelta {
            inserts: vec![(2, 3)],
            removes: vec![],
        };
        net.apply(&bridge);
        let s = inc.apply(&bridge, &net);
        assert_eq!(s.rejected, 0, "bridges create no cycles");
        assert!(is_chordal(inc.subgraph()));
    }

    #[test]
    fn deletion_triggers_regional_rebuild_and_restores_chordality() {
        // K4 minus an edge is chordal; deleting a second edge leaves C4 —
        // the rebuild must re-extract a chordal region
        let k4 = EdgeDelta {
            inserts: vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
            removes: vec![],
        };
        let mut net = DeltaGraph::new(4);
        let mut inc = IncrementalChordal::new(4);
        net.apply(&k4);
        inc.apply(&k4, &net);
        assert_eq!(inc.retained_edges(), 6);
        let d1 = EdgeDelta {
            inserts: vec![],
            removes: vec![(0, 1)],
        };
        net.apply(&d1);
        let s = inc.apply(&d1, &net);
        assert_eq!(s.removed, 1);
        assert!(s.rebuild_region > 0);
        assert!(is_chordal(inc.subgraph()));
        let d2 = EdgeDelta {
            inserts: vec![],
            removes: vec![(2, 3)],
        };
        net.apply(&d2);
        inc.apply(&d2, &net);
        // remaining network is C4 0-2-1-3; a maximal chordal subgraph of a
        // C4 has 3 edges
        assert!(is_chordal(inc.subgraph()));
        assert_eq!(inc.retained_edges(), 3);
        for (u, v) in inc.subgraph().edges() {
            assert!(net.has_edge(u, v), "H must stay a subgraph of the net");
        }
    }

    #[test]
    fn rebuild_readmits_previously_rejected_edges() {
        // reject (0,3) while the C4 0-1-2-3 is closed, then delete (1,2):
        // the rebuild sees the path 0-1, 2-3, 0-3 and can admit (0,3)
        let mut net = DeltaGraph::new(4);
        let mut inc = IncrementalChordal::new(4);
        let d = EdgeDelta {
            inserts: vec![(0, 1), (1, 2), (2, 3), (0, 3)],
            removes: vec![],
        };
        net.apply(&d);
        let s = inc.apply(&d, &net);
        assert_eq!(s.rejected, 1);
        let del = EdgeDelta {
            inserts: vec![],
            removes: vec![(1, 2)],
        };
        net.apply(&del);
        let s = inc.apply(&del, &net);
        assert!(s.rebuild_region >= 2);
        assert!(inc.subgraph().has_edge(0, 3), "rebuild must re-admit (0,3)");
        assert!(is_chordal(inc.subgraph()));
    }

    #[test]
    fn random_churn_stays_chordal_subgraph_of_net() {
        let (g, _) = planted_partition(120, 4, 8, 0.9, 80, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut net = DeltaGraph::new(120);
        let mut inc = IncrementalChordal::new(120);
        let all = g.edge_vec();
        // ingest in 6 slices, then randomly remove batches
        for chunk in all.chunks(all.len().div_ceil(6)) {
            let d = EdgeDelta {
                inserts: chunk.to_vec(),
                removes: vec![],
            };
            net.apply(&d);
            inc.apply(&d, &net);
            assert!(is_chordal(inc.subgraph()));
        }
        for _ in 0..4 {
            let removes: Vec<_> = net
                .snapshot()
                .edges()
                .filter(|_| rng.gen_range(0..100) < 20)
                .collect();
            let d = EdgeDelta {
                inserts: vec![],
                removes,
            };
            net.apply(&d);
            inc.apply(&d, &net);
            assert!(is_chordal(inc.subgraph()));
            for (u, v) in inc.subgraph().edges() {
                assert!(net.has_edge(u, v));
            }
        }
    }

    #[test]
    fn reset_replays_bit_identically() {
        // a reset maintainer must reproduce a fresh one exactly —
        // subgraph, ops and simulated clock — across a delta replay
        let (g, _) = planted_partition(100, 3, 8, 0.9, 60, 7);
        let chunks: Vec<EdgeDelta> = g
            .edge_vec()
            .chunks(40)
            .map(|c| EdgeDelta {
                inserts: c.to_vec(),
                removes: vec![],
            })
            .collect();
        let replay = |inc: &mut IncrementalChordal| {
            let mut net = DeltaGraph::new(100);
            for d in &chunks {
                net.apply(d);
                inc.apply(d, &net);
            }
        };
        let mut fresh = IncrementalChordal::new(100);
        replay(&mut fresh);
        let mut reused = IncrementalChordal::new(100);
        replay(&mut reused);
        reused.reset();
        assert_eq!(reused.retained_edges(), 0);
        assert_eq!(reused.sim_seconds(), 0.0);
        replay(&mut reused);
        assert!(reused.subgraph().same_edges(fresh.subgraph()));
        assert_eq!(reused.total_ops(), fresh.total_ops());
        assert_eq!(reused.sim_seconds(), fresh.sim_seconds());
    }

    #[test]
    fn from_state_resumes_bit_identically() {
        // stop a replay halfway, clone the public state through
        // `from_state`, and finish both — subgraph, ops and clock must
        // agree exactly (what the .csbn checkpoint relies on)
        let (g, _) = planted_partition(90, 3, 8, 0.9, 50, 13);
        let chunks: Vec<EdgeDelta> = g
            .edge_vec()
            .chunks(35)
            .map(|c| EdgeDelta {
                inserts: c.to_vec(),
                removes: vec![],
            })
            .collect();
        let mut net = DeltaGraph::new(90);
        let mut straight = IncrementalChordal::new(90);
        let half = chunks.len() / 2;
        for d in &chunks[..half] {
            net.apply(d);
            straight.apply(d, &net);
        }
        let mut resumed = IncrementalChordal::from_state(
            straight.subgraph().clone(),
            straight.config(),
            straight.cost_model(),
            straight.sim_seconds(),
            straight.total_ops(),
        );
        assert_eq!(resumed.sim_seconds(), straight.sim_seconds());
        for d in &chunks[half..] {
            net.apply(d);
            straight.apply(d, &net);
            resumed.apply(d, &net);
        }
        assert!(resumed.subgraph().same_edges(straight.subgraph()));
        assert_eq!(resumed.total_ops(), straight.total_ops());
        assert_eq!(
            resumed.sim_seconds().to_bits(),
            straight.sim_seconds().to_bits()
        );
    }

    #[test]
    fn sim_clock_accumulates_monotonically() {
        let g = gnm(50, 140, 9);
        let mut net = DeltaGraph::new(50);
        let mut inc = IncrementalChordal::new(50);
        let mut last = 0.0;
        for chunk in g.edge_vec().chunks(30) {
            let d = EdgeDelta {
                inserts: chunk.to_vec(),
                removes: vec![],
            };
            net.apply(&d);
            let s = inc.apply(&d, &net);
            assert!(s.sim_seconds > 0.0);
            assert!(inc.sim_seconds() > last);
            last = inc.sim_seconds();
        }
    }
}
