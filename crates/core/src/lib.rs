//! The paper's primary contribution: **parallel adaptive sampling filters**
//! for biological correlation networks (§III).
//!
//! "Adaptive" is the paper's term for objective-driven sampling: instead of
//! preserving generic graph statistics (what random-walk style samplers
//! do), the filter is chosen to match the analysis objective — here,
//! retaining dense gene modules while discarding noise edges. The filters:
//!
//! * [`SequentialChordalFilter`] — maximal chordal subgraph of the whole
//!   network (Dearing–Shier–Warner via [`casbn_chordal`]).
//! * [`ParallelChordalCommFilter`] — the authors' earlier (HPCS'11)
//!   distributed algorithm: local chordal subgraphs + pairwise **border
//!   edge exchange**, sender/receiver per processor pair. Scalability
//!   suffers as `O(b²/d)` in the border count `b`.
//! * [`ParallelChordalNoCommFilter`] — **this paper's algorithm**: local
//!   chordal subgraphs + a communication-free border rule (a pair of
//!   border edges at a common foreign vertex is kept iff the local edge
//!   closing the triangle is a chordal edge). Output is a *quasi-chordal
//!   subgraph* (QCS): large cycles can survive across partitions and
//!   border edges can be duplicated (deduplicated during assembly, with
//!   the duplicate count reported — paper bound: ≤ b duplications).
//! * [`ParallelRandomWalkFilter`] — the control filter: per-partition
//!   random walks (1/d edge choice, |E|/2 selections), border edges kept
//!   on an unbiased per-edge coin flip.
//! * [`IncrementalChordal`] — the streaming counterpart of the sequential
//!   chordal filter: maintains a chordal subgraph of a live
//!   [`casbn_graph::DeltaGraph`] under edge-delta batches instead of
//!   re-running DSW from scratch ([`incremental`]).
//!
//! Every filter implements [`Filter`] and reports a [`FilterStats`] with
//! both real wall-clock and the [`casbn_distsim`] simulated makespan, the
//! latter being what the scalability figure (Fig. 10) plots.

pub mod baselines;
pub mod chordal_filters;
pub mod cycle_break;
pub mod filter;
pub mod incremental;
pub mod random_walk;

pub use baselines::{ForestFireFilter, RandomEdgeFilter, RandomNodeFilter};
pub use chordal_filters::{
    ParallelChordalCommFilter, ParallelChordalNoCommFilter, SequentialChordalFilter,
};
pub use cycle_break::{break_cycles, CycleBreakReport};
pub use filter::{Filter, FilterOutput, FilterStats};
pub use incremental::{IncBatchStats, IncrementalChordal};
pub use random_walk::{ParallelRandomWalkFilter, WalkMode};

use casbn_graph::{apply_ordering, Graph, OrderingKind};

/// Apply `filter` to `g` under the vertex ordering `kind` (paper §III-A,
/// "Effect of Vertex Ordering"), returning the sampled graph **in the
/// original vertex labels** so downstream cluster comparison works across
/// orderings.
///
/// The ordering relabels the graph; the filter's traversal follows the new
/// labels (tie-breaking, start vertex, partition layout); the result is
/// mapped back through the inverse permutation.
pub fn filter_with_ordering<F: Filter>(
    g: &Graph,
    kind: OrderingKind,
    filter: &F,
    seed: u64,
) -> FilterOutput {
    let (h, perm) = apply_ordering(g, kind);
    let mut out = filter.filter(&h, seed);
    let mut inv = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    out.graph = out.graph.permuted(&inv);
    out
}

#[cfg(test)]
mod ordering_tests {
    use super::*;
    use casbn_graph::generators::planted_partition;
    use casbn_graph::PartitionKind;

    #[test]
    fn filtered_graph_is_in_original_labels() {
        let (g, _) = planted_partition(150, 3, 10, 0.9, 60, 3);
        let f = SequentialChordalFilter::new();
        for kind in OrderingKind::paper_set() {
            let out = filter_with_ordering(&g, kind, &f, 0);
            // a subgraph of g in g's own labels
            assert!(
                out.graph.edges().all(|(u, v)| g.has_edge(u, v)),
                "{kind:?} produced non-subgraph edges"
            );
        }
    }

    #[test]
    fn orderings_change_the_result_but_not_wildly() {
        let (g, _) = planted_partition(200, 4, 10, 0.9, 120, 9);
        let f = SequentialChordalFilter::new();
        let sizes: Vec<usize> = OrderingKind::paper_set()
            .iter()
            .map(|&k| filter_with_ordering(&g, k, &f, 0).graph.m())
            .collect();
        let (lo, hi) = (
            *sizes.iter().min().unwrap() as f64,
            *sizes.iter().max().unwrap() as f64,
        );
        assert!(hi > 0.0);
        // H0b regime: subgraph sizes differ across orderings by < 30%
        assert!(lo / hi > 0.7, "ordering spread too wide: {sizes:?}");
    }

    #[test]
    fn natural_ordering_is_identity_pipeline() {
        let (g, _) = planted_partition(100, 2, 8, 0.9, 40, 1);
        let f = ParallelChordalNoCommFilter::new(2, PartitionKind::Block);
        let direct = f.filter(&g, 0);
        let via = filter_with_ordering(&g, OrderingKind::Natural, &f, 0);
        assert!(direct.graph.same_edges(&via.graph));
    }
}
