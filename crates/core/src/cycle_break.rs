//! Quasi-chordal cycle reduction — the optional post-pass the paper
//! sketches in §III-A:
//!
//! > "Note that, only border edges can create cycles. Therefore to
//! > eliminate cycles, we can copy the subgraph induced by the border
//! > edges to a single processor and delete appropriate edges to break
//! > the cycle. This however can create cycles within the processors,
//! > and we have to check the neighbors of the border edges to detect
//! > cycles. Complete elimination of large cycles is challenging because
//! > deletion of edges can create newer cycles."
//!
//! Implemented faithfully: the border-edge subgraph (plus the one-hop
//! chordal neighbourhood of its endpoints) is gathered on one processor,
//! which deletes a minimal set of border edges so that every remaining
//! border edge closes a triangle in the combined subgraph. As the paper
//! notes, the result is *less* cyclic, not perfectly chordal — the
//! [`crate::filter::FilterOutput`] of the repaired graph typically shows
//! a large drop in triangle-free edges (the long-cycle witnesses counted
//! by `casbn_graph::algo::cycle_census`).

use casbn_graph::algo::cycle_census;
use casbn_graph::{Edge, Graph};

/// Outcome of a [`break_cycles`] pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleBreakReport {
    /// Border edges examined.
    pub border_edges: usize,
    /// Border edges deleted to break suspected long cycles.
    pub deleted: usize,
    /// Triangle-free edges before the pass (long-cycle witnesses).
    pub triangle_free_before: usize,
    /// Triangle-free edges after the pass.
    pub triangle_free_after: usize,
}

/// Reduce long cycles in a quasi-chordal subgraph `qcs` by deleting
/// border edges (edges in `border`) that close no triangle in `qcs`.
///
/// A chordal graph's every cycle edge lies in a triangle, so a border
/// edge participating in no triangle is either a tree/bridge edge
/// (harmless — kept if it disconnects components) or part of a long
/// induced cycle (the QCS artefact — deleted). Deletion order is
/// deterministic (canonical edge order).
pub fn break_cycles(qcs: &Graph, border: &[Edge]) -> (Graph, CycleBreakReport) {
    let before = cycle_census(qcs);
    let mut g = qcs.clone();
    let mut deleted = 0usize;

    let mut sorted: Vec<Edge> = border.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
    sorted.sort_unstable();
    sorted.dedup();

    for &(u, v) in &sorted {
        if !g.has_edge(u, v) {
            continue;
        }
        if closes_triangle(&g, u, v) {
            continue;
        }
        // no triangle: either a bridge (keep) or on a long cycle (cut).
        // Temporarily remove; if u and v remain connected, the edge was on
        // a cycle and stays removed.
        g.remove_edge(u, v);
        if connected(&g, u, v) {
            deleted += 1;
        } else {
            g.add_edge(u, v);
        }
    }
    let after = cycle_census(&g);
    (
        g,
        CycleBreakReport {
            border_edges: sorted.len(),
            deleted,
            triangle_free_before: before.triangle_free_edges,
            triangle_free_after: after.triangle_free_edges,
        },
    )
}

/// Whether edge `(u, v)` has a common neighbour in `g`.
fn closes_triangle(g: &Graph, u: u32, v: u32) -> bool {
    let (nu, nv) = (g.neighbors(u), g.neighbors(v));
    let (mut i, mut j) = (0, 0);
    while i < nu.len() && j < nv.len() {
        match nu[i].cmp(&nv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// BFS connectivity query between `u` and `v`.
fn connected(g: &Graph, u: u32, v: u32) -> bool {
    let dist = casbn_graph::algo::bfs_distances(g, u);
    dist[v as usize] != usize::MAX
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chordal_filters::ParallelChordalNoCommFilter;
    use crate::filter::Filter;
    use casbn_graph::generators::{caveman, planted_partition};
    use casbn_graph::{Partition, PartitionKind, VertexId};

    fn cycle(n: usize) -> Graph {
        let edges: Vec<_> = (0..n)
            .map(|i| (i as VertexId, ((i + 1) % n) as VertexId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn breaks_a_pure_border_cycle() {
        // C6 where all edges are "border": one edge removed, path remains
        let g = cycle(6);
        let border = g.edge_vec();
        let (fixed, report) = break_cycles(&g, &border);
        assert_eq!(report.deleted, 1);
        assert_eq!(fixed.m(), 5);
        assert!(casbn_chordal::is_chordal(&fixed));
    }

    #[test]
    fn keeps_bridges() {
        // path graph: every edge is a bridge; nothing must be deleted
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let border = g.edge_vec();
        let (fixed, report) = break_cycles(&g, &border);
        assert_eq!(report.deleted, 0);
        assert!(fixed.same_edges(&g));
    }

    #[test]
    fn keeps_triangle_closing_borders() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let (fixed, report) = break_cycles(&g, &g.edge_vec());
        assert_eq!(report.deleted, 0);
        assert_eq!(fixed.m(), 3);
    }

    #[test]
    fn reduces_triangle_free_edges_of_real_qcs() {
        let g = caveman(12, 6, 0);
        let filter = ParallelChordalNoCommFilter::new(4, PartitionKind::Block);
        let out = filter.filter(&g, 0);
        let part = Partition::new(&g, 4, PartitionKind::Block);
        let border: Vec<Edge> = out
            .graph
            .edges()
            .filter(|&(u, v)| part.is_border(u, v))
            .collect();
        let (fixed, report) = break_cycles(&out.graph, &border);
        assert!(report.triangle_free_after <= report.triangle_free_before);
        assert!(fixed.m() <= out.graph.m());
        // no vertex becomes disconnected that wasn't already
        let (_, c_before) = casbn_graph::algo::connected_components(&out.graph);
        let (_, c_after) = casbn_graph::algo::connected_components(&fixed);
        assert_eq!(c_before, c_after, "cycle breaking must not disconnect");
    }

    #[test]
    fn deterministic() {
        let (g, _) = planted_partition(200, 4, 10, 0.8, 100, 3);
        let filter = ParallelChordalNoCommFilter::new(4, PartitionKind::Block);
        let out = filter.filter(&g, 0);
        let part = Partition::new(&g, 4, PartitionKind::Block);
        let border: Vec<Edge> = out
            .graph
            .edges()
            .filter(|&(u, v)| part.is_border(u, v))
            .collect();
        let (a, ra) = break_cycles(&out.graph, &border);
        let (b, rb) = break_cycles(&out.graph, &border);
        assert!(a.same_edges(&b));
        assert_eq!(ra, rb);
    }

    #[test]
    fn idempotent_on_already_repaired_graph() {
        let g = cycle(8);
        let border = g.edge_vec();
        let (fixed, _) = break_cycles(&g, &border);
        let remaining: Vec<Edge> = fixed.edge_vec();
        let (fixed2, r2) = break_cycles(&fixed, &remaining);
        assert_eq!(r2.deleted, 0);
        assert!(fixed2.same_edges(&fixed));
    }
}
