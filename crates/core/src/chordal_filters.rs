//! Sequential and parallel maximal-chordal sampling filters (paper §III-A).

use crate::filter::{assemble, Filter, FilterOutput, FilterStats};
use casbn_chordal::{maximal_chordal_subgraph, ChordalConfig};
use casbn_distsim::{decode_edges, encode_edges, run, CostModel, RankCtx};
use casbn_graph::{Edge, Graph, Partition, PartitionKind, VertexId};

/// Message tag for the border-edge exchange of the comm variant.
const TAG_BORDER: u64 = 1;

/// Sequential maximal chordal subgraph filter — the baseline of every
/// parallel comparison and the filter used for the per-ordering analyses
/// (Figs. 4–9).
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialChordalFilter {
    /// DSW configuration (selection rule).
    pub config: ChordalConfig,
    /// Cost model used for simulated timing.
    pub cost: CostModel,
}

impl SequentialChordalFilter {
    /// Filter with the default DSW configuration and cost model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Filter for SequentialChordalFilter {
    fn name(&self) -> String {
        "chordal-seq".into()
    }

    fn filter(&self, g: &Graph, _seed: u64) -> FilterOutput {
        let started = std::time::Instant::now();
        let r = maximal_chordal_subgraph(g, self.config);
        let wall = started.elapsed();
        let sim = r.work.ops as f64 * self.cost.seconds_per_op;
        FilterOutput {
            stats: FilterStats {
                nranks: 1,
                original_edges: g.m(),
                retained_edges: r.graph.m(),
                border_edges: 0,
                duplicate_border_edges: 0,
                sim_makespan: sim,
                sim_times: vec![sim],
                wall,
                bytes_sent: 0,
                messages: 0,
            },
            graph: r.graph,
        }
    }
}

/// State each rank builds in the local phase: the maximal chordal subgraph
/// of its internal edges, with id mapping between global and local space.
struct RankLocal {
    /// Global ids of this rank's vertices (ascending).
    verts: Vec<VertexId>,
    /// global id -> local id (or `u32::MAX`).
    g2l: Vec<u32>,
    /// Local-id chordal subgraph.
    chordal: Graph,
    /// DSW work in abstract ops.
    work: u64,
}

impl RankLocal {
    fn compute(
        n_global: usize,
        verts: Vec<VertexId>,
        internal_edges: &[Edge],
        config: ChordalConfig,
    ) -> Self {
        let mut g2l = vec![u32::MAX; n_global];
        for (i, &v) in verts.iter().enumerate() {
            g2l[v as usize] = i as u32;
        }
        // internal edges are distinct canonical edges, so the local graph
        // can be bulk-built (append + one sort) instead of paying a
        // binary-search insert per edge
        let mut local = Graph::new(verts.len());
        for &(u, v) in internal_edges {
            local.push_edge_unsorted(g2l[u as usize], g2l[v as usize]);
        }
        local.sort_adjacency();
        let r = maximal_chordal_subgraph(&local, config);
        RankLocal {
            verts,
            g2l,
            chordal: r.graph,
            work: r.work.ops,
        }
    }

    /// Is the (global-id) pair `(a, b)` a chordal edge of this rank?
    fn has_chordal_edge(&self, a: VertexId, b: VertexId) -> bool {
        let la = self.g2l[a as usize];
        let lb = self.g2l[b as usize];
        la != u32::MAX && lb != u32::MAX && self.chordal.has_edge(la, lb)
    }

    /// Chordal edges mapped back to global ids.
    fn global_edges(&self) -> Vec<Edge> {
        self.chordal
            .edges()
            .map(|(u, v)| (self.verts[u as usize], self.verts[v as usize]))
            .collect()
    }
}

/// Group this rank's border edges by their **foreign** endpoint: one
/// `(foreign, scan position, local)` triple per border edge, sorted by
/// `(foreign, scan position)`. Groups are contiguous runs of equal
/// `foreign`, ascending, with each group's locals in border-scan order —
/// exactly the iteration the previous `BTreeMap<_, Vec<_>>` grouping
/// produced, for one `sort_unstable` instead of `O(b log b)` tree nodes.
fn by_foreign_endpoint(
    border: &[Edge],
    part: &Partition,
    rank: u32,
) -> Vec<(VertexId, u32, VertexId)> {
    let mut pairs: Vec<(VertexId, u32, VertexId)> = border
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| {
            let (local, foreign) = if part.part(u) == rank { (u, v) } else { (v, u) };
            (foreign, i as u32, local)
        })
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Iterate the contiguous `(foreign, locals)` groups of a
/// [`by_foreign_endpoint`] buffer.
fn for_each_foreign_group(
    pairs: &[(VertexId, u32, VertexId)],
    mut f: impl FnMut(VertexId, &[(VertexId, u32, VertexId)]),
) {
    let mut i = 0usize;
    while i < pairs.len() {
        let foreign = pairs[i].0;
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == foreign {
            j += 1;
        }
        f(foreign, &pairs[i..j]);
        i = j;
    }
}

/// The improved, **communication-free** parallel chordal filter — the
/// paper's contribution (§III-A, Fig. 1).
///
/// Each rank extracts the maximal chordal subgraph of its internal edges,
/// then applies the triangle rule to its border edges: for a foreign
/// vertex `f` adjacent to local vertices `a, b`, the border edges `(f,a)`
/// and `(f,b)` are both kept iff `(a,b)` is a local *chordal* edge. No
/// messages are exchanged; both ranks incident to a border edge may keep
/// it, so assembly deduplicates (duplicate count reported, ≤ b).
#[derive(Clone, Copy, Debug)]
pub struct ParallelChordalNoCommFilter {
    /// Number of simulated processors.
    pub nranks: usize,
    /// Data-distribution strategy (hypothesis H0c's second axis).
    pub partition: PartitionKind,
    /// DSW configuration for the local phase.
    pub config: ChordalConfig,
    /// Cost model used for simulated timing.
    pub cost: CostModel,
}

impl ParallelChordalNoCommFilter {
    /// Filter on `nranks` processors with partition strategy `partition`.
    pub fn new(nranks: usize, partition: PartitionKind) -> Self {
        ParallelChordalNoCommFilter {
            nranks,
            partition,
            config: ChordalConfig::default(),
            cost: CostModel::default(),
        }
    }
}

impl Filter for ParallelChordalNoCommFilter {
    fn name(&self) -> String {
        format!("chordal-nocomm-p{}", self.nranks)
    }

    fn filter(&self, g: &Graph, _seed: u64) -> FilterOutput {
        let part = Partition::new(g, self.nranks, self.partition);
        let n = g.n();

        // Each rank derives its own internal/border edge view inside its
        // thread (`Partition::rank_edges`), so the O(m) edge
        // classification runs in parallel and is charged to the
        // simulated clock — the main thread only builds the partition.
        let result = run(self.nranks, self.cost, |ctx: &mut RankCtx| {
            let rank = ctx.rank() as u32;
            let re = part.rank_edges(g, rank);
            ctx.compute(re.scan_ops);
            let local = RankLocal::compute(n, re.verts, &re.internal, self.config);
            ctx.compute(local.work);

            // triangle rule on border edges
            let mut kept: Vec<Edge> = local.global_edges();
            let groups = by_foreign_endpoint(&re.border, &part, rank);
            let mut ops = 0u64;
            let mut include: Vec<bool> = Vec::new();
            for_each_foreign_group(&groups, |f, locs| {
                ops += (locs.len() * locs.len()) as u64 + 1;
                include.clear();
                include.resize(locs.len(), false);
                for i in 0..locs.len() {
                    for j in (i + 1)..locs.len() {
                        if local.has_chordal_edge(locs[i].2, locs[j].2) {
                            include[i] = true;
                            include[j] = true;
                        }
                    }
                }
                for (i, &(_, _, l)) in locs.iter().enumerate() {
                    if include[i] {
                        kept.push((f.min(l), f.max(l)));
                    }
                }
            });
            ctx.compute(ops);
            (kept, re.border.len())
        });

        let mut all: Vec<Edge> = Vec::new();
        let mut border_double = 0usize;
        for (kept, nborder) in result.outputs {
            all.extend(kept);
            border_double += nborder;
        }
        let (graph, dups) = assemble(n, all);
        FilterOutput {
            stats: FilterStats {
                nranks: self.nranks,
                original_edges: g.m(),
                retained_edges: graph.m(),
                // every border edge is seen by exactly its two ranks
                border_edges: border_double / 2,
                duplicate_border_edges: dups,
                sim_makespan: result.sim_makespan,
                sim_times: result.sim_times,
                wall: result.wall,
                bytes_sent: result.bytes_sent,
                messages: result.messages,
            },
            graph,
        }
    }
}

/// The authors' earlier (HPCS'11) parallel chordal filter **with
/// communication**: for every processor pair sharing border edges, one
/// side is designated sender and ships the mutual border edges; the
/// receiver decides which can be retained while preserving the chordality
/// of *its* subgraph (accepted foreign endpoints must attach to a clique).
///
/// Scalability degrades in the border count `b` (the paper quotes
/// `O(b²/d)`): every pair with mutual border edges costs a message
/// (latency + `b` edge transfers) plus the receiver's acceptance scan,
/// and the number of such pairs grows ~quadratically in the processor
/// count while the per-rank compute shrinks — which is what bends the
/// with-communication curve upward at 32–64 processors on a small
/// network (Fig. 10, left).
#[derive(Clone, Copy, Debug)]
pub struct ParallelChordalCommFilter {
    /// Number of simulated processors.
    pub nranks: usize,
    /// Data-distribution strategy.
    pub partition: PartitionKind,
    /// DSW configuration for the local phase.
    pub config: ChordalConfig,
    /// Cost model used for simulated timing.
    pub cost: CostModel,
}

impl ParallelChordalCommFilter {
    /// Filter on `nranks` processors with partition strategy `partition`.
    pub fn new(nranks: usize, partition: PartitionKind) -> Self {
        ParallelChordalCommFilter {
            nranks,
            partition,
            config: ChordalConfig::default(),
            cost: CostModel::default(),
        }
    }

    /// Sender of the mutual border edges for pair `(i, j)`; the parity
    /// alternation balances sender/receiver roles across pairs.
    fn sender_of(i: usize, j: usize) -> usize {
        let (lo, hi) = (i.min(j), i.max(j));
        if (lo + hi) % 2 == 0 {
            lo
        } else {
            hi
        }
    }
}

impl Filter for ParallelChordalCommFilter {
    fn name(&self) -> String {
        format!("chordal-comm-p{}", self.nranks)
    }

    fn filter(&self, g: &Graph, _seed: u64) -> FilterOutput {
        let part = Partition::new(g, self.nranks, self.partition);
        let n = g.n();

        // Every rank derives its own border view locally; the mutual edge
        // list of a pair is whatever the sender ships, so no global
        // mutual-edge map is built on the main thread.
        let result = run(self.nranks, self.cost, |ctx: &mut RankCtx| {
            let rank = ctx.rank();
            let re = part.rank_edges(g, rank as u32);
            ctx.compute(re.scan_ops);
            let local = RankLocal::compute(n, re.verts, &re.internal, self.config);
            ctx.compute(local.work);
            let mut kept: Vec<Edge> = local.global_edges();

            // this rank's border edges grouped by partner rank: sorting
            // (partner, scan position) index pairs gives the same
            // ascending-partner deterministic, deadlock-free schedule the
            // previous BTreeMap grouping produced (both sides agree a
            // pair exists iff mutual border edges exist), with each
            // partner's edges kept in border-scan order
            let mut by_partner: Vec<(usize, u32)> = re
                .border
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| {
                    let (pu, pv) = (part.part(u) as usize, part.part(v) as usize);
                    let partner = if pu == rank { pv } else { pu };
                    (partner, i as u32)
                })
                .collect();
            by_partner.sort_unstable();
            let mut edges: Vec<Edge> = Vec::new();
            let mut i = 0usize;
            while i < by_partner.len() {
                let partner = by_partner[i].0;
                edges.clear();
                while i < by_partner.len() && by_partner[i].0 == partner {
                    edges.push(re.border[by_partner[i].1 as usize]);
                    i += 1;
                }
                let sender = Self::sender_of(rank, partner);
                if sender == rank {
                    ctx.send(partner, TAG_BORDER, encode_edges(&edges));
                } else {
                    let received = decode_edges(&ctx.recv(partner, TAG_BORDER));
                    // retained-edge computation: per foreign vertex keep a
                    // greedy clique of local attachment points
                    let groups = by_foreign_endpoint(&received, &part, rank as u32);
                    let mut ops = 0u64;
                    let mut acc: Vec<VertexId> = Vec::new();
                    for_each_foreign_group(&groups, |f, locs| {
                        acc.clear();
                        for &(_, _, l) in locs {
                            ops += (acc.len() + 1) as u64;
                            if acc.iter().all(|&x| local.has_chordal_edge(x, l)) {
                                acc.push(l);
                                kept.push((f.min(l), f.max(l)));
                            }
                        }
                    });
                    ctx.compute(ops);
                }
            }
            (kept, re.border.len())
        });

        let mut all: Vec<Edge> = Vec::new();
        let mut border_double = 0usize;
        for (kept, nborder) in result.outputs {
            all.extend(kept);
            border_double += nborder;
        }
        let (graph, dups) = assemble(n, all);
        FilterOutput {
            stats: FilterStats {
                nranks: self.nranks,
                original_edges: g.m(),
                retained_edges: graph.m(),
                border_edges: border_double / 2,
                duplicate_border_edges: dups,
                sim_makespan: result.sim_makespan,
                sim_times: result.sim_times,
                wall: result.wall,
                bytes_sent: result.bytes_sent,
                messages: result.messages,
            },
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbn_chordal::is_chordal;
    use casbn_graph::algo::cycle_census;
    use casbn_graph::generators::{caveman, gnm, planted_partition};

    fn subgraph_of(g: &Graph, h: &Graph) -> bool {
        h.edges().all(|(u, v)| g.has_edge(u, v))
    }

    #[test]
    fn sequential_output_is_chordal_subgraph() {
        let g = gnm(150, 450, 3);
        let out = SequentialChordalFilter::new().filter(&g, 0);
        assert!(is_chordal(&out.graph));
        assert!(subgraph_of(&g, &out.graph));
        assert_eq!(out.stats.nranks, 1);
        assert_eq!(out.stats.messages, 0);
    }

    #[test]
    fn nocomm_single_rank_matches_sequential() {
        let g = gnm(100, 300, 5);
        let seq = SequentialChordalFilter::new().filter(&g, 0);
        let par = ParallelChordalNoCommFilter::new(1, PartitionKind::Block).filter(&g, 0);
        assert!(seq.graph.same_edges(&par.graph));
        assert_eq!(par.stats.border_edges, 0);
        assert_eq!(par.stats.duplicate_border_edges, 0);
    }

    #[test]
    fn nocomm_sends_no_messages() {
        let g = gnm(200, 600, 7);
        let out = ParallelChordalNoCommFilter::new(8, PartitionKind::Block).filter(&g, 0);
        assert_eq!(out.stats.messages, 0);
        assert_eq!(out.stats.bytes_sent, 0);
    }

    #[test]
    fn comm_sends_messages_when_borders_exist() {
        let g = gnm(200, 600, 7);
        let out = ParallelChordalCommFilter::new(4, PartitionKind::Block).filter(&g, 0);
        assert!(out.stats.border_edges > 0);
        assert!(out.stats.messages > 0);
        assert!(out.stats.bytes_sent > 0);
    }

    #[test]
    fn parallel_outputs_are_subgraphs() {
        let g = gnm(300, 900, 11);
        for p in [2, 4, 8] {
            let a = ParallelChordalNoCommFilter::new(p, PartitionKind::Block).filter(&g, 0);
            let b = ParallelChordalCommFilter::new(p, PartitionKind::Block).filter(&g, 0);
            assert!(subgraph_of(&g, &a.graph), "nocomm p={p}");
            assert!(subgraph_of(&g, &b.graph), "comm p={p}");
        }
    }

    #[test]
    fn quasi_chordal_has_few_triangle_free_edges() {
        // QCS property: large cycles can appear, but only via border edges;
        // the bulk of the subgraph stays triangle-rich
        let (g, _) = planted_partition(400, 8, 12, 0.9, 300, 13);
        let out = ParallelChordalNoCommFilter::new(8, PartitionKind::Block).filter(&g, 0);
        let census = cycle_census(&out.graph);
        // every kept border edge closes a triangle on at least one side by
        // construction; internal edges come from chordal subgraphs, where
        // only tree-ish edges are triangle-free
        let frac = census.triangle_free_edges as f64 / out.graph.m().max(1) as f64;
        assert!(frac < 0.8, "triangle-free fraction {frac:.2}");
    }

    #[test]
    fn duplicates_bounded_by_border_edges() {
        let g = caveman(16, 8, 0);
        for p in [2, 4, 8] {
            let out = ParallelChordalNoCommFilter::new(p, PartitionKind::Block).filter(&g, 0);
            assert!(
                out.stats.duplicate_border_edges <= out.stats.border_edges,
                "p={p}: dups {} > borders {}",
                out.stats.duplicate_border_edges,
                out.stats.border_edges
            );
        }
    }

    #[test]
    fn more_processors_fewer_edges() {
        // paper, H0c: "by increasing the number of processors, the
        // resulting filtered network has fewer edges"
        let (g, _) = planted_partition(600, 10, 15, 0.9, 500, 17);
        let e1 = ParallelChordalNoCommFilter::new(1, PartitionKind::Block)
            .filter(&g, 0)
            .graph
            .m();
        let e16 = ParallelChordalNoCommFilter::new(16, PartitionKind::Block)
            .filter(&g, 0)
            .graph
            .m();
        assert!(e16 <= e1, "edges grew with processors: {e1} -> {e16}");
    }

    #[test]
    fn filters_are_deterministic() {
        let g = gnm(250, 700, 19);
        let f = ParallelChordalNoCommFilter::new(4, PartitionKind::Block);
        assert!(f.filter(&g, 0).graph.same_edges(&f.filter(&g, 0).graph));
        let f = ParallelChordalCommFilter::new(4, PartitionKind::Block);
        assert!(f.filter(&g, 0).graph.same_edges(&f.filter(&g, 0).graph));
    }

    #[test]
    fn sim_times_deterministic() {
        let g = gnm(250, 700, 19);
        let f = ParallelChordalCommFilter::new(4, PartitionKind::Block);
        let a = f.filter(&g, 0);
        let b = f.filter(&g, 0);
        assert_eq!(a.stats.sim_times, b.stats.sim_times);
    }

    #[test]
    fn fig1_triangle_rule() {
        // Figure 1's described behaviour: border pair (2,6),(4,6) rejected
        // in a partition where (2,4) is not chordal; (4,6),(4,8) accepted
        // where (6,8) is chordal.
        // Two partitions: {0..4} and {5..9}. Local edges make (6,8)
        // chordal in the bottom partition; (2,4) absent on top.
        let mut g = Graph::new(10);
        // top partition internal: 2-3 (but NOT 2-4)
        g.add_edge(2, 3);
        // bottom partition internal: 6-8 plus support
        g.add_edge(6, 8);
        g.add_edge(8, 9);
        // border edges: (2,6), (4,6) share foreign 6 on top side; their
        // triangle needs (2,4) -> missing. (6,4),(8,4) share foreign 4 on
        // bottom side; triangle closes via chordal (6,8) -> kept.
        g.add_edge(2, 6);
        g.add_edge(4, 6);
        g.add_edge(4, 8);
        let part = Partition::from_assignment(vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1], 2);
        // reuse internals via a custom run: emulate with Block on this id
        // layout (ids 0..4 -> part 0, 5..9 -> part 1), which Block yields
        let blockpart = Partition::new(&g, 2, PartitionKind::Block);
        assert_eq!(
            (0..10).map(|v| blockpart.part(v)).collect::<Vec<_>>(),
            (0..10).map(|v| part.part(v)).collect::<Vec<_>>()
        );
        let out = ParallelChordalNoCommFilter::new(2, PartitionKind::Block).filter(&g, 0);
        // (4,6) and (4,8) kept via bottom partition's chordal (6,8)
        assert!(out.graph.has_edge(4, 6), "border (4,6) should be kept");
        assert!(out.graph.has_edge(4, 8), "border (4,8) should be kept");
        // (2,6) has no closing chordal triangle on either side -> dropped
        assert!(!out.graph.has_edge(2, 6), "border (2,6) should be dropped");
    }

    #[test]
    fn comm_variant_single_rank_matches_sequential() {
        let g = gnm(80, 240, 23);
        let seq = SequentialChordalFilter::new().filter(&g, 0);
        let comm = ParallelChordalCommFilter::new(1, PartitionKind::Block).filter(&g, 0);
        assert!(seq.graph.same_edges(&comm.graph));
    }

    #[test]
    fn comm_makespan_exceeds_nocomm_with_many_ranks() {
        // small network, many processors: border pairs multiply and the
        // with-communication variant pays latency + O(b²/d)
        let g = gnm(400, 1200, 29);
        let p = 16;
        let comm = ParallelChordalCommFilter::new(p, PartitionKind::Block).filter(&g, 0);
        let nocomm = ParallelChordalNoCommFilter::new(p, PartitionKind::Block).filter(&g, 0);
        assert!(
            comm.stats.sim_makespan > nocomm.stats.sim_makespan,
            "comm {} <= nocomm {}",
            comm.stats.sim_makespan,
            nocomm.stats.sim_makespan
        );
    }
}
