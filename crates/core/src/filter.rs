//! The adaptive-sampling [`Filter`] abstraction and its output/statistics
//! types.

use casbn_graph::Graph;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// An adaptive network sampling filter (paper §III).
///
/// A filter consumes a network and produces a sampled subgraph over the
/// same vertex set. Filters are deterministic given the `seed`.
pub trait Filter {
    /// Human-readable name used in figure output.
    fn name(&self) -> String;

    /// Apply the filter to `g`.
    fn filter(&self, g: &Graph, seed: u64) -> FilterOutput;
}

/// Execution statistics of one filter application.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FilterStats {
    /// Ranks (simulated processors) used.
    pub nranks: usize,
    /// Edges in the input network.
    pub original_edges: usize,
    /// Edges retained by the filter (after deduplication).
    pub retained_edges: usize,
    /// Border edges under the partition used (0 for sequential).
    pub border_edges: usize,
    /// Border edges kept by more than one rank and merged during assembly
    /// (the paper's "≤ b duplications" removed in the sequential pass).
    pub duplicate_border_edges: usize,
    /// Simulated makespan in seconds (cost-model time; Fig. 10's y-axis).
    pub sim_makespan: f64,
    /// Per-rank simulated completion times.
    pub sim_times: Vec<f64>,
    /// Real wall-clock time of the threaded execution.
    pub wall: Duration,
    /// Total message payload bytes exchanged.
    pub bytes_sent: u64,
    /// Total messages exchanged.
    pub messages: u64,
}

/// Result of applying a [`Filter`].
#[derive(Clone, Debug)]
pub struct FilterOutput {
    /// The sampled network (same vertex set as the input).
    pub graph: Graph,
    /// Execution statistics.
    pub stats: FilterStats,
}

impl FilterOutput {
    /// Fraction of original edges retained.
    pub fn retention(&self) -> f64 {
        if self.stats.original_edges == 0 {
            return 1.0;
        }
        self.stats.retained_edges as f64 / self.stats.original_edges as f64
    }

    /// The paper's noise estimate: the size reduction achieved by the
    /// filter ("ideally, if the data is noise free, no reduction should
    /// occur").
    pub fn noise_estimate(&self) -> f64 {
        1.0 - self.retention()
    }
}

/// Merge per-rank edge lists into one graph over `n` vertices, counting
/// duplicates (same canonical edge contributed by more than one rank).
pub(crate) fn assemble(n: usize, mut edges: Vec<(u32, u32)>) -> (Graph, usize) {
    for e in edges.iter_mut() {
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    let before = edges.len();
    edges.dedup();
    let dups = before - edges.len();
    (Graph::from_edges(n, &edges), dups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_dedups_and_counts() {
        let (g, dups) = assemble(5, vec![(0, 1), (1, 0), (2, 3), (3, 4)]);
        assert_eq!(g.m(), 3);
        assert_eq!(dups, 1);
    }

    #[test]
    fn retention_and_noise() {
        let out = FilterOutput {
            graph: Graph::new(2),
            stats: FilterStats {
                original_edges: 10,
                retained_edges: 7,
                ..Default::default()
            },
        };
        assert!((out.retention() - 0.7).abs() < 1e-12);
        assert!((out.noise_estimate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_input_retention_is_one() {
        let out = FilterOutput {
            graph: Graph::new(0),
            stats: FilterStats::default(),
        };
        assert_eq!(out.retention(), 1.0);
    }
}
