//! Additional agnostic-sampling baselines from the paper's background
//! (§II): **forest fire** (Leskovec & Faloutsos 2006), **random node**
//! and **random edge** sampling. The paper argues these samplers, built
//! to preserve generic graph properties, are "potentially harmful on
//! noisy networks, since \[they\] also effectively capture noise" — these
//! implementations let the claim be tested directly (see the
//! `baseline_filters` integration test and the ablation bench).

use crate::filter::{assemble, Filter, FilterOutput, FilterStats};
use casbn_graph::{Edge, Graph, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Forest-fire sampling: repeatedly ignite a random vertex; the fire
/// spreads to a geometrically-distributed number of unburned neighbours
/// (mean `pf / (1 − pf)`), collecting traversed edges, until the target
/// edge fraction is reached.
#[derive(Clone, Copy, Debug)]
pub struct ForestFireFilter {
    /// Forward-burning probability (Leskovec's `pf`; 0.7 is the paper's
    /// canonical "good sample" setting).
    pub pf: f64,
    /// Fraction of edges to retain (the chordal filter's budget analogue;
    /// default 0.5 to match the random-walk budget).
    pub target_fraction: f64,
}

impl Default for ForestFireFilter {
    fn default() -> Self {
        ForestFireFilter {
            pf: 0.7,
            target_fraction: 0.5,
        }
    }
}

impl Filter for ForestFireFilter {
    fn name(&self) -> String {
        "forestfire".into()
    }

    fn filter(&self, g: &Graph, seed: u64) -> FilterOutput {
        let started = std::time::Instant::now();
        let n = g.n();
        let target = ((g.m() as f64) * self.target_fraction) as usize;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut kept: Vec<Edge> = Vec::with_capacity(target);
        let mut kept_set = vec![false; 0];
        let _ = &mut kept_set;
        let mut burned = vec![false; n];
        let mut distinct = 0usize;

        while distinct < target && n > 0 && g.m() > 0 {
            // ignite
            let start = rng.gen_range(0..n) as VertexId;
            let mut frontier = vec![start];
            burned.fill(false);
            burned[start as usize] = true;
            while let Some(v) = frontier.pop() {
                if distinct >= target {
                    break;
                }
                // geometric number of links to burn
                let mut burn = 0usize;
                while rng.gen_bool(self.pf) {
                    burn += 1;
                    if burn > g.degree(v) {
                        break;
                    }
                }
                let nbrs = g.neighbors(v);
                if nbrs.is_empty() {
                    continue;
                }
                for _ in 0..burn.min(nbrs.len()) {
                    let w = nbrs[rng.gen_range(0..nbrs.len())];
                    let e = (v.min(w), v.max(w));
                    kept.push(e);
                    distinct = estimate_distinct(&mut kept, distinct);
                    if !burned[w as usize] {
                        burned[w as usize] = true;
                        frontier.push(w);
                    }
                }
            }
        }
        let (graph, _) = assemble(n, kept);
        finish(g, graph, started.elapsed())
    }
}

/// Periodically dedup the kept list so the distinct count stays honest
/// without a per-push hash lookup.
fn estimate_distinct(kept: &mut Vec<Edge>, last: usize) -> usize {
    if kept.len() >= 2 * (last + 16) {
        kept.sort_unstable();
        kept.dedup();
    }
    kept.len().min(last.max(kept.len() / 2) + 1).max({
        // cheap lower bound; exact count happens at assemble time
        last
    })
}

/// Random-node sampling: keep a vertex subset of the given fraction and
/// the subgraph they induce.
#[derive(Clone, Copy, Debug)]
pub struct RandomNodeFilter {
    /// Fraction of vertices retained (default 0.7 ≈ half the edges in a
    /// sparse graph).
    pub node_fraction: f64,
}

impl Default for RandomNodeFilter {
    fn default() -> Self {
        RandomNodeFilter { node_fraction: 0.7 }
    }
}

impl Filter for RandomNodeFilter {
    fn name(&self) -> String {
        "randomnode".into()
    }

    fn filter(&self, g: &Graph, seed: u64) -> FilterOutput {
        let started = std::time::Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let keep: Vec<bool> = (0..g.n())
            .map(|_| rng.gen_bool(self.node_fraction))
            .collect();
        let edges: Vec<Edge> = g
            .edges()
            .filter(|&(u, v)| keep[u as usize] && keep[v as usize])
            .collect();
        let (graph, _) = assemble(g.n(), edges);
        finish(g, graph, started.elapsed())
    }
}

/// Random-edge sampling: keep each edge independently with probability
/// `edge_fraction`.
#[derive(Clone, Copy, Debug)]
pub struct RandomEdgeFilter {
    /// Probability of keeping each edge (default 0.5 — the random-walk
    /// budget).
    pub edge_fraction: f64,
}

impl Default for RandomEdgeFilter {
    fn default() -> Self {
        RandomEdgeFilter { edge_fraction: 0.5 }
    }
}

impl Filter for RandomEdgeFilter {
    fn name(&self) -> String {
        "randomedge".into()
    }

    fn filter(&self, g: &Graph, seed: u64) -> FilterOutput {
        let started = std::time::Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let edges: Vec<Edge> = g
            .edges()
            .filter(|_| rng.gen_bool(self.edge_fraction))
            .collect();
        let (graph, _) = assemble(g.n(), edges);
        finish(g, graph, started.elapsed())
    }
}

fn finish(original: &Graph, graph: Graph, wall: std::time::Duration) -> FilterOutput {
    FilterOutput {
        stats: FilterStats {
            nranks: 1,
            original_edges: original.m(),
            retained_edges: graph.m(),
            border_edges: 0,
            duplicate_border_edges: 0,
            sim_makespan: 0.0,
            sim_times: vec![0.0],
            wall,
            bytes_sent: 0,
            messages: 0,
        },
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chordal_filters::SequentialChordalFilter;
    use casbn_graph::generators::planted_partition;
    use casbn_mcode::{mcode_cluster, McodeParams};

    fn network() -> (Graph, Vec<Vec<VertexId>>) {
        let (g, t) = planted_partition(600, 12, 10, 0.55, 500, 21);
        (g, t.modules)
    }

    #[test]
    fn all_baselines_produce_subgraphs() {
        let (g, _) = network();
        let outs: Vec<FilterOutput> = vec![
            ForestFireFilter::default().filter(&g, 3),
            RandomNodeFilter::default().filter(&g, 3),
            RandomEdgeFilter::default().filter(&g, 3),
        ];
        for out in outs {
            assert!(out.graph.edges().all(|(u, v)| g.has_edge(u, v)));
            assert!(out.graph.m() < g.m());
            assert!(out.graph.m() > 0);
        }
    }

    #[test]
    fn baselines_are_deterministic() {
        let (g, _) = network();
        for f in [
            &ForestFireFilter::default() as &dyn Filter,
            &RandomNodeFilter::default(),
            &RandomEdgeFilter::default(),
        ] {
            assert!(f.filter(&g, 9).graph.same_edges(&f.filter(&g, 9).graph));
        }
    }

    #[test]
    fn chordal_beats_every_baseline_on_cluster_retention() {
        // the paper's §II thesis, quantified: agnostic samplers thin dense
        // modules below MCODE's detection cut; the adaptive chordal filter
        // does not
        let (g, _) = network();
        let params = McodeParams::default();
        let orig = mcode_cluster(&g, &params).len();
        assert!(orig >= 5, "need clusters to start with, got {orig}");
        let chordal =
            mcode_cluster(&SequentialChordalFilter::new().filter(&g, 0).graph, &params).len();
        // edge-thinning samplers drop dense modules below the MCODE cut
        for (name, out) in [
            ("forestfire", ForestFireFilter::default().filter(&g, 5)),
            ("randomedge", RandomEdgeFilter::default().filter(&g, 5)),
        ] {
            let found = mcode_cluster(&out.graph, &params).len();
            assert!(
                found < chordal,
                "{name} kept {found} clusters, chordal kept {chordal}"
            );
        }
        // node sampling keeps surviving modules at full density, but the
        // 30% of discarded genes shrink the retained cluster *membership*
        let rn = RandomNodeFilter::default().filter(&g, 5);
        let rn_clusters = mcode_cluster(&rn.graph, &params);
        let ch_clusters =
            mcode_cluster(&SequentialChordalFilter::new().filter(&g, 0).graph, &params);
        let members =
            |cs: &[casbn_mcode::Cluster]| -> usize { cs.iter().map(|c| c.vertices.len()).sum() };
        assert!(rn_clusters.len() <= chordal);
        assert!(
            members(&rn_clusters) < members(&ch_clusters),
            "random node retained {} cluster members vs chordal {}",
            members(&rn_clusters),
            members(&ch_clusters)
        );
    }

    #[test]
    fn random_edge_fraction_controls_retention() {
        let (g, _) = network();
        let half = RandomEdgeFilter { edge_fraction: 0.5 }.filter(&g, 1);
        let tenth = RandomEdgeFilter { edge_fraction: 0.1 }.filter(&g, 1);
        assert!(tenth.graph.m() < half.graph.m());
        let frac = half.graph.m() as f64 / g.m() as f64;
        assert!((0.4..0.6).contains(&frac), "got {frac}");
    }

    #[test]
    fn forest_fire_respects_target() {
        let (g, _) = network();
        let out = ForestFireFilter {
            pf: 0.7,
            target_fraction: 0.3,
        }
        .filter(&g, 7);
        let frac = out.graph.m() as f64 / g.m() as f64;
        assert!(frac <= 0.45, "forest fire overshot: {frac}");
    }
}
