//! The control filter: parallel random-walk sampling (paper §III-A,
//! "Parallel Random Walk Based Sampling").
//!
//! The walk is a pure graph traversal: at a vertex of degree `d`, one
//! incident edge is selected with probability `1/d` and traversed. No
//! visited list is kept — vertices and edges can be selected repeatedly.
//! The walk stops once the number of *selection events* reaches half the
//! edge count; the sampled graph is the set of distinct selected edges.
//! The rationale tested (and refuted for cluster finding) in the paper:
//! tightly connected regions are re-visited more often, so cliques should
//! survive.
//!
//! In the parallel version each rank walks its own partition's internal
//! subgraph, and each border edge is kept or dropped on an independent
//! fair coin flip. The flip is implemented as a hash of (seed, edge), so
//! both ranks incident to a border edge agree without exchanging messages
//! — the algorithm is trivially communication-free and "perfectly
//! scalable", as the paper notes.

use crate::filter::{assemble, Filter, FilterOutput, FilterStats};
use casbn_distsim::{run, CostModel, RankCtx};
use casbn_graph::{Edge, Graph, Partition, PartitionKind, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How the "1/d edge selection" is realised. The paper's wording admits
/// two readings; both are implemented and compared in the ablation bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalkMode {
    /// **Per-vertex sweep** (default): every vertex of degree `d` selects
    /// one of its incident edges with probability `1/d`; sweeps repeat
    /// until the selection budget (|E|/2) is spent. Retained degree is
    /// capped near 2 per sweep, which is what makes the control *unable*
    /// to keep dense regions — reproducing the paper's empirical result
    /// ("there are not enough edges retained … to identify very dense
    /// groups of nodes": zero clusters).
    #[default]
    VertexSweep,
    /// A positional random walk restarted every few selections ("the
    /// traversal process is continued iteratively"). Walks concentrate in
    /// dense regions, so this variant retains locally dense traces — the
    /// paper's stated *rationale* for random-walk sampling, which its own
    /// experiments then refute.
    Traversal,
}

/// Parallel random-walk filter (the paper's control).
#[derive(Clone, Copy, Debug)]
pub struct ParallelRandomWalkFilter {
    /// Number of simulated processors (1 = the sequential control).
    pub nranks: usize,
    /// Data-distribution strategy.
    pub partition: PartitionKind,
    /// Selection mechanism.
    pub mode: WalkMode,
    /// Cost model used for simulated timing.
    pub cost: CostModel,
}

impl ParallelRandomWalkFilter {
    /// Filter on `nranks` processors with partition strategy `partition`.
    pub fn new(nranks: usize, partition: PartitionKind) -> Self {
        ParallelRandomWalkFilter {
            nranks,
            partition,
            mode: WalkMode::default(),
            cost: CostModel::default(),
        }
    }

    /// Use the positional-traversal variant instead of the vertex sweep.
    pub fn traversal(mut self) -> Self {
        self.mode = WalkMode::Traversal;
        self
    }
}

/// SplitMix64 — used to give every border edge an i.i.d. coin flip that
/// both incident ranks can evaluate without communicating.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn border_coin(seed: u64, u: VertexId, v: VertexId) -> bool {
    let key = ((u.min(v) as u64) << 32) | u.max(v) as u64;
    splitmix64(seed ^ key) & 1 == 1
}

/// Per-vertex sweep until `target_selections` edge-selection events have
/// occurred: each vertex of degree `d` selects one incident edge
/// (probability `1/d` per edge); sweeps repeat while budget remains.
fn sweep_edges(g: &Graph, target_selections: usize, rng: &mut ChaCha8Rng) -> (Vec<Edge>, u64) {
    let n = g.n();
    if n == 0 || g.m() == 0 || target_selections == 0 {
        return (Vec::new(), 0);
    }
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    let mut picked: Vec<Edge> = Vec::with_capacity(target_selections.min(g.m()));
    let mut steps = 0u64;
    let mut selections = 0usize;
    'outer: while selections < target_selections {
        use rand::seq::SliceRandom;
        order.shuffle(rng);
        let mut any = false;
        for &v in &order {
            if selections >= target_selections {
                break 'outer;
            }
            let d = g.degree(v);
            if d == 0 {
                continue;
            }
            let w = g.neighbors(v)[rng.gen_range(0..d)];
            picked.push((v.min(w), v.max(w)));
            selections += 1;
            steps += 1;
            any = true;
        }
        if !any {
            break;
        }
    }
    picked.sort_unstable();
    picked.dedup();
    (picked, steps)
}

/// Positional walk with periodic restarts until `target_selections`
/// edge-selection events have occurred; returns the distinct selected
/// edges and the number of steps taken.
fn random_walk_edges(
    g: &Graph,
    target_selections: usize,
    rng: &mut ChaCha8Rng,
) -> (Vec<Edge>, u64) {
    let n = g.n();
    if n == 0 || g.m() == 0 || target_selections == 0 {
        return (Vec::new(), 0);
    }
    let mut picked: Vec<Edge> = Vec::with_capacity(target_selections.min(g.m()));
    let mut at: VertexId = rng.gen_range(0..n) as VertexId;
    let mut steps = 0u64;
    let mut selections = 0usize;
    // The paper's traversal is "continued iteratively": the walk restarts
    // from a fresh random vertex every few selections, spreading the
    // selection budget across the (highly fragmented) correlation network
    // instead of camping inside one dense region. Without restarts a
    // single walker fully samples whatever module it lands in, which
    // contradicts the paper's observed zero-cluster outcome.
    const RESTART_EVERY: usize = 8;
    while selections < target_selections {
        let d = g.degree(at);
        if d == 0 {
            // leave isolated vertices (and disconnected dust)
            at = rng.gen_range(0..n) as VertexId;
            steps += 1;
            continue;
        }
        let next = g.neighbors(at)[rng.gen_range(0..d)];
        picked.push((at.min(next), at.max(next)));
        selections += 1;
        steps += 1;
        at = next;
        if selections.is_multiple_of(RESTART_EVERY) {
            at = rng.gen_range(0..n) as VertexId;
        }
    }
    picked.sort_unstable();
    picked.dedup();
    (picked, steps)
}

impl Filter for ParallelRandomWalkFilter {
    fn name(&self) -> String {
        format!("randomwalk-p{}", self.nranks)
    }

    fn filter(&self, g: &Graph, seed: u64) -> FilterOutput {
        let part = Partition::new(g, self.nranks, self.partition);
        let n = g.n();

        // Each rank classifies its own edges inside its thread (see
        // `Partition::rank_edges`), charged to the simulated clock.
        let result = run(self.nranks, self.cost, |ctx: &mut RankCtx| {
            let rank = ctx.rank() as u32;
            let re = part.rank_edges(g, rank);
            ctx.compute(re.scan_ops);
            let mut g2l = vec![u32::MAX; n];
            for (i, &v) in re.verts.iter().enumerate() {
                g2l[v as usize] = i as u32;
            }
            let mut local = Graph::new(re.verts.len());
            for &(u, v) in &re.internal {
                local.add_edge(g2l[u as usize], g2l[v as usize]);
            }
            // per-rank deterministic RNG substream
            let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(seed ^ (rank as u64)));
            let target = local.m() / 2;
            let (edges, steps) = match self.mode {
                WalkMode::VertexSweep => sweep_edges(&local, target, &mut rng),
                WalkMode::Traversal => random_walk_edges(&local, target, &mut rng),
            };
            ctx.compute(steps);

            let mut kept: Vec<Edge> = edges
                .into_iter()
                .map(|(u, v)| (re.verts[u as usize], re.verts[v as usize]))
                .map(|(u, v)| (u.min(v), u.max(v)))
                .collect();

            // border edges: one deterministic coin flip per edge; only the
            // lower-id part records it, so no duplicates arise
            let mut flips = 0u64;
            for &(u, v) in &re.border {
                flips += 1;
                let owner = part.part(u).min(part.part(v));
                if owner == rank && border_coin(seed, u, v) {
                    kept.push((u.min(v), u.max(v)));
                }
            }
            ctx.compute(flips);
            (kept, re.border.len())
        });

        let mut all: Vec<Edge> = Vec::new();
        let mut border_double = 0usize;
        for (kept, nborder) in result.outputs {
            all.extend(kept);
            border_double += nborder;
        }
        let (graph, dups) = assemble(n, all);
        FilterOutput {
            stats: FilterStats {
                nranks: self.nranks,
                original_edges: g.m(),
                retained_edges: graph.m(),
                border_edges: border_double / 2,
                duplicate_border_edges: dups,
                sim_makespan: result.sim_makespan,
                sim_times: result.sim_times,
                wall: result.wall,
                bytes_sent: result.bytes_sent,
                messages: result.messages,
            },
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbn_graph::generators::{gnm, planted_partition};

    #[test]
    fn output_is_subgraph() {
        let g = gnm(200, 600, 3);
        let out = ParallelRandomWalkFilter::new(4, PartitionKind::Block).filter(&g, 7);
        assert!(out.graph.edges().all(|(u, v)| g.has_edge(u, v)));
    }

    #[test]
    fn retains_at_most_half_the_edges_sequentially() {
        let g = gnm(300, 900, 5);
        let out = ParallelRandomWalkFilter::new(1, PartitionKind::Block).filter(&g, 9);
        assert!(
            out.graph.m() <= g.m() / 2,
            "retained {} of {}",
            out.graph.m(),
            g.m()
        );
        assert!(out.graph.m() > 0, "walk selected nothing");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm(150, 450, 11);
        let f = ParallelRandomWalkFilter::new(4, PartitionKind::Block);
        assert!(f.filter(&g, 42).graph.same_edges(&f.filter(&g, 42).graph));
        assert!(!f.filter(&g, 42).graph.same_edges(&f.filter(&g, 43).graph));
    }

    #[test]
    fn no_messages_ever() {
        let g = gnm(200, 500, 13);
        let out = ParallelRandomWalkFilter::new(8, PartitionKind::Block).filter(&g, 1);
        assert_eq!(out.stats.messages, 0);
    }

    #[test]
    fn no_duplicate_border_edges() {
        // the coin-flip ownership rule means each border edge is
        // contributed by exactly one rank
        let g = gnm(300, 900, 17);
        let out = ParallelRandomWalkFilter::new(8, PartitionKind::RoundRobin).filter(&g, 3);
        assert_eq!(out.stats.duplicate_border_edges, 0);
    }

    #[test]
    fn rw_retains_fewer_module_edges_than_chordal() {
        // the core H0a mechanism: the chordal filter keeps dense modules
        // nearly intact, the random walk thins them below cluster density
        use crate::chordal_filters::SequentialChordalFilter;
        let (g, truth) = planted_partition(400, 6, 12, 0.95, 250, 21);
        let ch = SequentialChordalFilter::new().filter(&g, 0);
        let rw = ParallelRandomWalkFilter::new(1, PartitionKind::Block).filter(&g, 5);
        let mut ch_kept = 0usize;
        let mut rw_kept = 0usize;
        let mut total = 0usize;
        for module in &truth.modules {
            let (orig, _) = g.induced_subgraph(module);
            let (c, _) = ch.graph.induced_subgraph(module);
            let (r, _) = rw.graph.induced_subgraph(module);
            total += orig.m();
            ch_kept += c.m();
            rw_kept += r.m();
        }
        assert!(
            ch_kept > rw_kept,
            "chordal kept {ch_kept}/{total}, rw kept {rw_kept}/{total}"
        );
    }

    #[test]
    fn walk_on_empty_graph() {
        let g = Graph::new(10);
        let out = ParallelRandomWalkFilter::new(2, PartitionKind::Block).filter(&g, 0);
        assert_eq!(out.graph.m(), 0);
    }

    #[test]
    fn border_coin_is_symmetric() {
        for s in 0..10u64 {
            assert_eq!(border_coin(s, 3, 9), border_coin(s, 9, 3));
        }
        // and roughly fair
        let heads = (0..1000u32).filter(|&i| border_coin(99, i, i + 1)).count();
        assert!((350..=650).contains(&heads), "heads {heads}");
    }
}
