//! Graceful shutdown: the drain + final durable checkpoint contract.
//!
//! A SIGINT mid-session must (a) answer every request already read —
//! no accepted query is dropped — and (b) leave a durable checkpoint
//! through `write_atomic` that a fresh process resumes from
//! **bit-exact**: finishing the replay from the checkpoint yields the
//! same streaming checksum as a run that was never interrupted.

use casbn_expr::DatasetPreset;
use casbn_serve::protocol::{split_frame, Request, Response};
use casbn_serve::{serve_session, ServeEngine, SessionConfig};
use casbn_store::io::{write_atomic, MemFs, RetryPolicy};
use casbn_store::Store;
use casbn_stream::{synthesize_replay, StreamConfig, StreamDriver};
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const CKPT: &str = "serve.ckpt.csbn";

/// A reader modelling SIGINT delivery: it hands out its buffered frames,
/// then raises the shutdown flag at the moment the session would block
/// waiting for more input.
struct FramesThenSigint {
    buf: Vec<u8>,
    pos: usize,
    flag: Arc<AtomicBool>,
}

impl Read for FramesThenSigint {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.buf.len() {
            let n = out.len().min(self.buf.len() - self.pos);
            out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        self.flag.store(true, Ordering::SeqCst);
        Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
    }
}

fn engine_with_memfs_sink(fs: Arc<MemFs>) -> ServeEngine {
    let replay = synthesize_replay(DatasetPreset::Yng, 0.02, Some(8));
    let mut engine = ServeEngine::from_replay(replay, StreamConfig::default());
    engine.set_checkpoint_sink(Box::new(move |w| {
        let bytes = w.try_to_bytes().map_err(|e| e.to_string())?;
        write_atomic(fs.as_ref(), CKPT, &bytes, RetryPolicy::new(2)).map_err(|e| e.to_string())
    }));
    engine
}

#[test]
fn sigint_drains_in_flight_batch_and_checkpoint_resumes_bit_exact() {
    let fs = Arc::new(MemFs::new());
    let mut engine = engine_with_memfs_sink(fs.clone());
    let total_windows = engine.remaining_windows();
    assert_eq!(total_windows, 4);

    // the interrupted session: ingest half the replay, then leave
    // queries sitting in the pending batch when the "signal" lands
    let script = [
        Request::Stats,
        Request::Ingest { windows: 2 },
        Request::Neighborhood { gene: 0 },
        Request::ClusterOf { gene: 1 },
        Request::Rho { u: 0, v: 1 },
    ];
    let mut buf = Vec::new();
    for req in &script {
        buf.extend_from_slice(&req.encode_frame());
    }
    let flag = Arc::new(AtomicBool::new(false));
    let input = FramesThenSigint {
        buf,
        pos: 0,
        flag: flag.clone(),
    };
    let mut out = Vec::new();
    let report = serve_session(
        &mut engine,
        input,
        &mut out,
        &SessionConfig::default(),
        &flag,
    )
    .unwrap();
    assert!(report.drained_on_shutdown);
    assert_eq!(
        report.requests,
        script.len() as u64,
        "drain dropped an accepted request"
    );

    // every response frame is present and well-formed
    let mut rest: &[u8] = &out;
    let mut responses = 0;
    while let Some((payload, tail)) = split_frame(rest).unwrap() {
        Response::decode_payload(payload).unwrap();
        responses += 1;
        rest = tail;
    }
    assert_eq!(responses, script.len());

    // the shutdown path's final durable checkpoint
    assert!(engine.final_checkpoint().unwrap());
    let image = fs.live(CKPT).expect("checkpoint written");

    // resume in a "fresh process" and finish the replay
    let resumed = StreamDriver::resume_from(&Store::parse(&image).unwrap()).unwrap();
    assert_eq!(resumed.samples_ingested(), 4, "checkpoint is at window 2");
    let replay = synthesize_replay(DatasetPreset::Yng, 0.02, Some(8));
    let mut resumed_engine = ServeEngine::from_driver(resumed, replay.clone());
    assert_eq!(resumed_engine.remaining_windows(), 2);
    resumed_engine.ingest_windows(2).unwrap();

    // the oracle: the same replay ingested with no interruption
    let mut oracle = ServeEngine::from_replay(replay, StreamConfig::default());
    oracle.ingest_windows(4).unwrap();
    assert_eq!(
        resumed_engine.stream_checksum(),
        oracle.stream_checksum(),
        "resume diverged from the uninterrupted run"
    );
    let a = resumed_engine.snapshot();
    let b = oracle.snapshot();
    assert!(a.network().same_edges(b.network()));
    assert_eq!(a.samples(), b.samples());
}

#[test]
fn eof_drain_also_leaves_a_resumable_checkpoint() {
    let fs = Arc::new(MemFs::new());
    let mut engine = engine_with_memfs_sink(fs.clone());
    let script = [Request::Ingest { windows: 1 }, Request::Stats];
    let mut buf = Vec::new();
    for req in &script {
        buf.extend_from_slice(&req.encode_frame());
    }
    let flag = AtomicBool::new(false);
    let mut out = Vec::new();
    let report = serve_session(
        &mut engine,
        buf.as_slice(),
        &mut out,
        &SessionConfig::default(),
        &flag,
    )
    .unwrap();
    assert!(!report.drained_on_shutdown, "EOF is not the shutdown path");
    assert_eq!(report.requests, 2);
    assert!(engine.final_checkpoint().unwrap());

    let image = fs.live(CKPT).expect("checkpoint written");
    let resumed = StreamDriver::resume_from(&Store::parse(&image).unwrap()).unwrap();
    assert_eq!(resumed.samples_ingested(), 2);
}
