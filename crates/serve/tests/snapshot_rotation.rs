//! Snapshot rotation under concurrent ingest.
//!
//! Two layers of proof that readers never observe a half-published
//! snapshot:
//!
//! 1. A **deterministic interleaving**: the writer advances one window
//!    at a time while a reader holds handles acquired at every epoch.
//!    Each held handle keeps answering bit-identically to an
//!    independent single-threaded oracle driver advanced to the same
//!    window — old snapshots stay consistent after arbitrarily many
//!    rotations.
//! 2. A **real-thread stress**: reader threads spin acquiring
//!    snapshots while the writer ingests the whole replay. Every
//!    acquired snapshot passes its integrity token, epochs are
//!    monotone per reader, and the writer publishes every rotation
//!    without waiting on readers.

use casbn_expr::DatasetPreset;
use casbn_serve::protocol::Request;
use casbn_serve::{ServeEngine, ServeSnapshot, SnapshotRegistry};
use casbn_stream::{synthesize_replay, StreamConfig, StreamDriver};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Queries covering every read-only opcode, applied identically to the
/// engine's snapshot and the oracle's.
fn probe_queries(genes: u32) -> Vec<Request> {
    let mut q = vec![Request::Stats];
    for g in 0..genes.min(24) {
        q.push(Request::Neighborhood { gene: g });
        q.push(Request::ClusterOf { gene: g });
        q.push(Request::Rho {
            u: g,
            v: (g + 1) % genes,
        });
    }
    q.push(Request::Enrich {
        genes: (0..genes.min(8)).collect(),
    });
    q
}

fn answers(snap: &ServeSnapshot, queries: &[Request]) -> Vec<Vec<u8>> {
    queries
        .iter()
        .map(|q| snap.answer(q).encode_frame())
        .collect()
}

#[test]
fn held_snapshots_match_per_window_oracle_across_rotations() {
    let replay = synthesize_replay(DatasetPreset::Yng, 0.02, Some(8));
    let genes = replay.genes() as u32;
    let queries = probe_queries(genes);

    let mut engine = ServeEngine::from_replay(replay.clone(), StreamConfig::default());
    let total = engine.remaining_windows();
    assert!(total >= 2, "need at least two rotations");

    // the reader's view: one handle per epoch, acquired as published
    let mut held = vec![engine.snapshot()];
    for _ in 0..total {
        engine.ingest_windows(1).unwrap();
        held.push(engine.snapshot());
    }
    assert_eq!(engine.registry().rotations(), total as u64);

    // the oracle: a fresh single-threaded driver replayed to each window
    let batch = StreamConfig::default().batch;
    for (epoch, snap) in held.iter().enumerate() {
        assert_eq!(snap.epoch(), epoch as u64);
        assert!(snap.verify_token(), "epoch {epoch} failed its token");
        let mut oracle = StreamDriver::new(replay.genes(), StreamConfig::default());
        for w in 0..epoch {
            let lo = w * batch;
            oracle.ingest_window(&replay.columns(lo, (lo + batch).min(replay.samples())));
        }
        let dag = casbn_serve::snapshot::serving_dag();
        let oracle_snap = ServeSnapshot::build(
            epoch as u64,
            oracle.samples_ingested() as u64,
            oracle.network().snapshot(),
            oracle.chordal().clone(),
            oracle.clusters().to_vec(),
            &oracle.retained_weights(),
            &dag,
        );
        assert_eq!(
            answers(snap, &queries),
            answers(&oracle_snap, &queries),
            "epoch {epoch} diverged from the single-threaded oracle"
        );
    }
}

#[test]
fn readers_never_observe_torn_state_under_thread_stress() {
    let replay = synthesize_replay(DatasetPreset::Yng, 0.05, Some(12));
    let mut engine = ServeEngine::from_replay(replay, StreamConfig::default());
    let registry: Arc<SnapshotRegistry> = engine.registry();
    let total = engine.remaining_windows();
    assert!(total >= 2);

    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            let reg = registry.clone();
            let done = done.clone();
            readers.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut acquired = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let snap = reg.acquire();
                    assert!(snap.verify_token(), "reader saw a torn snapshot");
                    assert!(snap.epoch() >= last_epoch, "reader saw epoch go backwards");
                    last_epoch = snap.epoch();
                    // exercise the indices, not just the token
                    let _ = snap.answer(&Request::Stats).encode_frame();
                    acquired += 1;
                }
                acquired
            }));
        }
        // the writer never waits on readers: ingest the whole replay
        let (run, epoch) = engine.ingest_windows(total).unwrap();
        assert_eq!(run, total);
        assert_eq!(epoch, total as u64);
        done.store(true, Ordering::SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never ran");
        }
    });
    assert_eq!(registry.rotations(), total as u64);
    assert!(registry.rotations() >= 2);
    let final_snap = registry.acquire();
    assert!(final_snap.verify_token());
    assert_eq!(final_snap.epoch(), total as u64);
}
