//! Acceptance gate: a pinned query script replayed against a pinned
//! artifact yields byte-identical responses at 1/2/4/8 worker threads.

use casbn_expr::DatasetPreset;
use casbn_serve::{parse_script, run_script, ServeEngine, SessionConfig};
use casbn_stream::{synthesize_replay, StreamConfig};

/// The pinned script: every query kind, ingest barriers between
/// batches, deliberately unbatchable tail sizes.
const SCRIPT: &str = "
stats
ingest 1
stats
neigh 0
neigh 1
neigh 2
cluster 0
cluster 7
rho 0 1
rho 2 3
enrich 0 1 2 3
ingest 1
stats
neigh 3
rho 1 2
enrich 4 5 6 7 8
ingest 2
stats
neigh 4
cluster 4
";

fn fresh_engine() -> ServeEngine {
    let replay = synthesize_replay(DatasetPreset::Yng, 0.02, Some(8));
    ServeEngine::from_replay(replay, StreamConfig::default())
}

#[test]
fn pinned_script_is_byte_identical_across_worker_counts() {
    let script = parse_script(SCRIPT).unwrap();
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let mut engine = fresh_engine();
        let cfg = SessionConfig {
            threads,
            ..SessionConfig::default()
        };
        let (report, bytes) = run_script(&mut engine, &script, &cfg).unwrap();
        assert_eq!(report.requests, script.len() as u64);
        match &baseline {
            None => baseline = Some((report.responses_checksum, bytes)),
            Some((checksum, base_bytes)) => {
                assert_eq!(
                    report.responses_checksum, *checksum,
                    "checksum diverged at {threads} threads"
                );
                assert_eq!(&bytes, base_bytes, "bytes diverged at {threads} threads");
            }
        }
    }
}

#[test]
fn smaller_batch_caps_change_batching_not_bytes() {
    let script = parse_script(SCRIPT).unwrap();
    let reference = {
        let mut engine = fresh_engine();
        run_script(&mut engine, &script, &SessionConfig::default())
            .unwrap()
            .1
    };
    for batch_max in [1usize, 3, 8] {
        let mut engine = fresh_engine();
        let cfg = SessionConfig {
            threads: 4,
            batch_max,
        };
        let (report, bytes) = run_script(&mut engine, &script, &cfg).unwrap();
        assert_eq!(bytes, reference, "batch cap {batch_max} changed bytes");
        assert!(report.batches >= 3);
    }
}
