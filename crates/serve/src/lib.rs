//! Resident concurrent query daemon over the CASBN pipeline.
//!
//! Every other entry point in the workspace is a one-shot CLI
//! invocation that re-opens its artifacts per run. This crate is the
//! **serving tier** (ROADMAP item 2): the network, its MCODE clusters
//! and the rho/enrichment indices stay resident, and queries — gene
//! neighborhood, cluster membership, rho lookup, gene-set enrichment —
//! are answered over a length-prefixed request/response protocol.
//!
//! * [`protocol`] — the frame codec: bounds-checked, typed errors,
//!   canonical payloads (`casbn fuzz --target csbn-serve` hammers it).
//! * [`snapshot`] — immutable [`ServeSnapshot`]s (graph + clusters +
//!   membership/rho/enrichment indices) and the [`SnapshotRegistry`]
//!   rotation point.
//! * [`batch`] — the batched execution core: 8–16 decoded queries per
//!   dispatch onto a worker pool, byte-deterministic for any worker
//!   count.
//! * [`engine`] — the writer side: [`ServeEngine`] advances a
//!   [`casbn_stream::StreamDriver`] window by window, publishing a
//!   snapshot rotation and a durable checkpoint at every boundary.
//! * [`server`] — session loops: stdin/stdout pipe mode, the scripted
//!   deterministic client ([`run_script`]), a TCP listener, and
//!   graceful SIGINT/EOF drain.
//!
//! Concurrency model: readers clone `Arc<ServeSnapshot>` handles from
//! the registry and never block the writer; the writer publishes whole
//! snapshots atomically. A reader that acquired a snapshot before a
//! rotation keeps answering from it consistently — there is no torn
//! state to observe, which the rotation test suite proves against a
//! single-threaded oracle.

pub mod batch;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use batch::{execute_batch, BATCH_MAX, BATCH_MIN};
pub use engine::{CheckpointSink, ServeEngine};
pub use protocol::{
    ClusterInfo, EnrichHit, ProtocolError, Request, Response, StatsInfo, MAX_FRAME,
};
pub use server::{
    fnv1a, install_sigint_handler, parse_script, run_script, script_to_frames,
    serve_readonly_session, serve_session, serve_tcp, shutdown_flag, SessionConfig, SessionReport,
};
pub use snapshot::{ServeSnapshot, SnapshotRegistry};
