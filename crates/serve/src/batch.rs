//! Batched query execution on a worker pool.
//!
//! Following the matchy exemplar's batch-query API, the session layer
//! groups decoded queries and dispatches [`BATCH_MIN`]..=[`BATCH_MAX`]
//! of them per call: one snapshot acquisition and one worker fan-out
//! amortise over the whole group, and the shared resident indices stay
//! hot in cache across the batch.
//!
//! Execution is deterministic by construction: each query is answered
//! by [`ServeSnapshot::answer`], a pure function of `(snapshot, query)`,
//! and responses land at their query's input index. Splitting the batch
//! into contiguous per-worker chunks therefore changes wall-clock only
//! — the response bytes are identical for any worker count, which the
//! determinism suite pins at 1/2/4/8 threads.

use crate::protocol::Request;
use crate::snapshot::ServeSnapshot;

/// Preferred lower bound on a dispatched batch (the session layer
/// flushes smaller groups only at barriers: ingest, shutdown, EOF).
pub const BATCH_MIN: usize = 8;

/// Upper bound on a dispatched batch.
pub const BATCH_MAX: usize = 16;

/// Answer every query in `batch` against one snapshot, returning the
/// encoded response **frames** in input order. `threads` bounds the
/// worker fan-out; 0 is treated as 1.
pub fn execute_batch(snap: &ServeSnapshot, batch: &[Request], threads: usize) -> Vec<Vec<u8>> {
    casbn_obs::counter_add("serve.requests", batch.len() as u64);
    casbn_obs::record_hist("serve.batch_size", batch.len() as u64);
    let threads = threads.max(1).min(batch.len().max(1));
    if threads == 1 {
        return batch
            .iter()
            .map(|req| snap.answer(req).encode_frame())
            .collect();
    }
    // contiguous chunks, one worker each; rejoining in chunk order
    // reassembles input order exactly
    let chunk = batch.len().div_ceil(threads);
    let mut out: Vec<Vec<Vec<u8>>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|req| snap.answer(req).encode_frame())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("batch worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{serving_dag, ServeSnapshot};
    use casbn_graph::generators::planted_partition;
    use casbn_mcode::{mcode_cluster, McodeParams};

    #[test]
    fn worker_count_never_changes_bytes() {
        let (g, _) = planted_partition(80, 4, 10, 0.85, 40, 21);
        let clusters = mcode_cluster(&g, &McodeParams::default());
        let snap = ServeSnapshot::build(1, 4, g.clone(), g, clusters, &[], &serving_dag());
        let batch: Vec<Request> = (0..BATCH_MAX as u32)
            .map(|i| match i % 4 {
                0 => Request::Neighborhood { gene: i },
                1 => Request::ClusterOf { gene: i * 3 },
                2 => Request::Rho { u: i, v: i + 1 },
                _ => Request::Stats,
            })
            .collect();
        let baseline = execute_batch(&snap, &batch, 1);
        assert_eq!(baseline.len(), batch.len());
        for threads in [2, 4, 8, 64] {
            assert_eq!(execute_batch(&snap, &batch, threads), baseline);
        }
        // degenerate inputs
        assert!(execute_batch(&snap, &[], 4).is_empty());
        assert_eq!(execute_batch(&snap, &batch[..1], 0), baseline[..1]);
    }
}
