//! The serving engine: one writer, many snapshots.
//!
//! A [`ServeEngine`] owns the mutable side of the daemon — for a
//! streaming source, the [`StreamDriver`] and its replay cursor — and a
//! [`SnapshotRegistry`] readers query through. Each ingested window
//! advances the driver, freezes a new [`ServeSnapshot`] from the
//! driver's published state (network, chordal subgraph, clusters,
//! retained rho weights), publishes it, and — when a checkpoint sink is
//! wired — hands the driver's staged [`StoreWriter`] to the sink so the
//! window boundary is also a durable recovery point (the CLI routes
//! sinks through `casbn_store::io::save_atomic`/`append_durable`).

use crate::snapshot::{serving_dag, ServeSnapshot, SnapshotRegistry};
use casbn_expr::ExpressionMatrix;
use casbn_graph::Graph;
use casbn_mcode::{mcode_cluster, McodeParams};
use casbn_ontology::GoDag;
use casbn_store::StoreWriter;
use casbn_stream::{StreamConfig, StreamDriver};
use std::sync::Arc;

/// Where durable checkpoints go. The engine stages the driver's full
/// resumable state into a [`StoreWriter`]; the sink owns durability
/// (atomic rewrite, durable append, an in-memory Vfs in tests…).
pub type CheckpointSink = Box<dyn FnMut(&StoreWriter) -> Result<(), String> + Send>;

/// The daemon's mutable core. Readers never touch it: they hold the
/// registry (see [`ServeEngine::registry`]) and acquire immutable
/// snapshots from it.
pub struct ServeEngine {
    registry: Arc<SnapshotRegistry>,
    dag: GoDag,
    stream: Option<StreamState>,
    sink: Option<CheckpointSink>,
}

struct StreamState {
    driver: StreamDriver,
    replay: ExpressionMatrix,
    cursor: usize,
}

impl ServeEngine {
    /// Serve a static packed network: MCODE runs once, the graph serves
    /// as both network and chordal view, and the rho table is all-zero
    /// (a packed graph artifact carries no correlation state). Ingest
    /// requests are rejected.
    pub fn from_graph(network: Graph, mcode: &McodeParams) -> ServeEngine {
        let clusters = mcode_cluster(&network, mcode);
        let dag = serving_dag();
        let snap = ServeSnapshot::build(0, 0, network.clone(), network, clusters, &[], &dag);
        ServeEngine {
            registry: SnapshotRegistry::new(snap),
            dag,
            stream: None,
            sink: None,
        }
    }

    /// Serve a sample replay: a fresh [`StreamDriver`] plus the full
    /// replay matrix. The epoch-0 snapshot (empty network) publishes
    /// immediately; [`ServeEngine::ingest_windows`] advances from there.
    pub fn from_replay(replay: ExpressionMatrix, cfg: StreamConfig) -> ServeEngine {
        assert!(cfg.batch > 0, "window batch size must be positive");
        let driver = StreamDriver::new(replay.genes(), cfg);
        ServeEngine::from_driver(driver, replay)
    }

    /// Serve from an existing driver (a checkpoint resume): the replay
    /// cursor skips the samples the driver already ingested, and the
    /// current driver state publishes as the initial snapshot.
    pub fn from_driver(driver: StreamDriver, replay: ExpressionMatrix) -> ServeEngine {
        assert_eq!(
            driver.genes(),
            replay.genes(),
            "replay gene count must match the driver"
        );
        let cursor = driver.samples_ingested();
        let dag = serving_dag();
        let snap = snapshot_from_driver(&driver, &dag);
        ServeEngine {
            registry: SnapshotRegistry::new(snap),
            dag,
            stream: Some(StreamState {
                driver,
                replay,
                cursor,
            }),
            sink: None,
        }
    }

    /// Wire a durable-checkpoint sink: called after every published
    /// window boundary and by [`ServeEngine::final_checkpoint`].
    pub fn set_checkpoint_sink(&mut self, sink: CheckpointSink) {
        self.sink = Some(sink);
    }

    /// The rotation registry readers share.
    pub fn registry(&self) -> Arc<SnapshotRegistry> {
        self.registry.clone()
    }

    /// The current snapshot (shorthand for `registry().acquire()`).
    pub fn snapshot(&self) -> Arc<ServeSnapshot> {
        self.registry.acquire()
    }

    /// Whether the engine has a stream source (can ingest).
    pub fn can_ingest(&self) -> bool {
        self.stream.is_some()
    }

    /// Full windows still available in the replay.
    pub fn remaining_windows(&self) -> usize {
        match &self.stream {
            None => 0,
            Some(s) => {
                let left = s.replay.samples().saturating_sub(s.cursor);
                left.div_ceil(s.driver.config().batch)
            }
        }
    }

    /// Streaming checksum of the driver so far (FNV over the integer
    /// window metrics), 0 for static sources.
    pub fn stream_checksum(&self) -> u64 {
        self.stream.as_ref().map_or(0, |s| s.driver.checksum())
    }

    /// Ingest up to `n` windows, publishing one snapshot (and one
    /// durable checkpoint, when a sink is wired) per window boundary.
    /// Returns `(windows_run, epoch)`; runs fewer than `n` windows only
    /// when the replay is exhausted. Errors from the checkpoint sink
    /// abort the loop after the failing window's snapshot published.
    pub fn ingest_windows(&mut self, n: usize) -> Result<(usize, u64), String> {
        if self.stream.is_none() {
            return Err("static artifact source cannot ingest".into());
        }
        let mut run = 0usize;
        for _ in 0..n {
            let s = self.stream.as_mut().unwrap();
            let batch = s.driver.config().batch;
            let samples = s.replay.samples();
            if s.cursor >= samples {
                break;
            }
            let hi = (s.cursor + batch).min(samples);
            let window = s.replay.columns(s.cursor, hi);
            s.driver.ingest_window(&window);
            s.cursor = hi;
            casbn_obs::counter_inc("serve.ingest_windows");
            let snap = snapshot_from_driver(&s.driver, &self.dag);
            self.registry.publish(snap);
            run += 1;
            self.write_checkpoint()?;
        }
        Ok((run, self.registry.epoch()))
    }

    /// Write a durable checkpoint of the current driver state through
    /// the wired sink. `Ok(false)` when there is nothing to do (static
    /// source or no sink) — the graceful-shutdown path calls this after
    /// draining so the final state is always a recovery point.
    pub fn final_checkpoint(&mut self) -> Result<bool, String> {
        if self.stream.is_none() || self.sink.is_none() {
            return Ok(false);
        }
        self.write_checkpoint()?;
        Ok(true)
    }

    fn write_checkpoint(&mut self) -> Result<(), String> {
        let (Some(s), Some(sink)) = (&self.stream, &mut self.sink) else {
            return Ok(());
        };
        let w = s
            .driver
            .checkpoint_writer()
            .map_err(|e| format!("staging checkpoint: {e}"))?;
        sink(&w)
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("epoch", &self.registry.epoch())
            .field("streaming", &self.stream.is_some())
            .field("checkpointing", &self.sink.is_some())
            .finish()
    }
}

/// Freeze the driver's current published state into a snapshot (the
/// snapshot-publication hook: clusters + retained weights come from the
/// driver's per-window pipeline).
fn snapshot_from_driver(driver: &StreamDriver, dag: &GoDag) -> Arc<ServeSnapshot> {
    ServeSnapshot::build(
        driver.windows().len() as u64,
        driver.samples_ingested() as u64,
        driver.network().snapshot(),
        driver.chordal().clone(),
        driver.clusters().to_vec(),
        &driver.retained_weights(),
        dag,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbn_expr::DatasetPreset;
    use casbn_stream::synthesize_replay;

    fn tiny_replay() -> ExpressionMatrix {
        synthesize_replay(DatasetPreset::Yng, 0.02, Some(8))
    }

    #[test]
    fn ingest_publishes_one_rotation_per_window() {
        let mut eng = ServeEngine::from_replay(tiny_replay(), StreamConfig::default());
        let reg = eng.registry();
        assert_eq!(reg.epoch(), 0);
        assert_eq!(eng.remaining_windows(), 4);
        let (run, epoch) = eng.ingest_windows(2).unwrap();
        assert_eq!((run, epoch), (2, 2));
        assert_eq!(reg.rotations(), 2);
        // over-asking runs only what the replay still holds
        let (run, epoch) = eng.ingest_windows(99).unwrap();
        assert_eq!((run, epoch), (2, 4));
        assert_eq!(eng.remaining_windows(), 0);
        let snap = eng.snapshot();
        assert_eq!(snap.epoch(), 4);
        assert_eq!(snap.samples(), 8);
        assert!(snap.verify_token());
    }

    #[test]
    fn snapshot_matches_driver_state() {
        let replay = tiny_replay();
        let mut eng = ServeEngine::from_replay(replay.clone(), StreamConfig::default());
        eng.ingest_windows(3).unwrap();
        // an independent single-threaded driver over the same windows
        let mut oracle = StreamDriver::new(replay.genes(), StreamConfig::default());
        for w in 0..3 {
            oracle.ingest_window(&replay.columns(w * 2, (w + 1) * 2));
        }
        let snap = eng.snapshot();
        assert!(snap.network().same_edges(&oracle.network().snapshot()));
        assert!(snap.chordal().same_edges(oracle.chordal()));
        assert_eq!(snap.clusters().len(), oracle.clusters().len());
        assert_eq!(eng.stream_checksum(), oracle.checksum());
    }

    #[test]
    fn static_engine_rejects_ingest() {
        let (g, _) = casbn_graph::generators::planted_partition(50, 4, 10, 0.9, 25, 3);
        let mut eng = ServeEngine::from_graph(g, &McodeParams::default());
        assert!(!eng.can_ingest());
        assert!(eng.ingest_windows(1).is_err());
        assert!(!eng.final_checkpoint().unwrap());
        assert!(!eng.snapshot().clusters().is_empty());
    }

    #[test]
    fn checkpoint_sink_fires_per_window_and_resumes() {
        use std::sync::{Arc as StdArc, Mutex};
        let replay = tiny_replay();
        let mut eng = ServeEngine::from_replay(replay.clone(), StreamConfig::default());
        let store: StdArc<Mutex<Vec<Vec<u8>>>> = StdArc::default();
        let sink_store = store.clone();
        eng.set_checkpoint_sink(Box::new(move |w| {
            let bytes = w.try_to_bytes().map_err(|e| e.to_string())?;
            sink_store.lock().unwrap().push(bytes);
            Ok(())
        }));
        eng.ingest_windows(2).unwrap();
        assert_eq!(store.lock().unwrap().len(), 2, "one checkpoint per window");
        // resuming from the latest checkpoint continues bit-exact
        let latest = store.lock().unwrap().last().unwrap().clone();
        let resumed =
            StreamDriver::resume_from(&casbn_store::Store::parse(&latest).unwrap()).unwrap();
        let mut resumed_eng = ServeEngine::from_driver(resumed, replay);
        assert_eq!(resumed_eng.remaining_windows(), 2);
        resumed_eng.ingest_windows(2).unwrap();
        eng.ingest_windows(2).unwrap();
        assert_eq!(resumed_eng.stream_checksum(), eng.stream_checksum());
    }
}
