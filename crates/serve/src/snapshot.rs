//! Immutable query snapshots and the rotation registry.
//!
//! A [`ServeSnapshot`] is everything one query needs, frozen: the
//! network and chordal graphs, the MCODE clusters with an `O(1)`
//! membership view, a flat rho table indexed by canonical edge rank,
//! and a synthetic GO annotation with its resident background-frequency
//! index. Snapshots are only ever built whole and published whole
//! through [`SnapshotRegistry::publish`], which swaps an
//! `Arc<ServeSnapshot>` under a lock — readers that already hold an
//! `Arc` keep their old snapshot alive for as long as they need it, so
//! rotation never blocks or invalidates an in-flight batch.

use crate::protocol::{
    ClusterInfo, EnrichHit, Request, Response, StatsInfo, ERR_BAD_GENE, ERR_READ_ONLY,
};
use casbn_graph::{EdgeRankIndex, Graph, VertexId};
use casbn_mcode::{membership_index, Cluster, NO_CLUSTER};
use casbn_ontology::{AnnotatedOntology, EnrichmentIndex, GoDag};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// GO DAG depth used for the synthetic annotation (matches the
/// benchmark pipeline's ontology shape).
pub const GO_LEVELS: usize = 8;
/// GO DAG width factor.
pub const GO_WIDTH: usize = 4;
/// Probability of an extra DAG parent.
pub const GO_EXTRA_PARENT_P: f64 = 0.25;
/// DAG term depth at which cluster modules are annotated.
pub const MODULE_TERM_DEPTH: u32 = 6;
/// Noise terms per unclustered gene.
pub const NOISE_TERMS: usize = 2;
/// Seed for the serving tier's GO DAG.
pub const DAG_SEED: u64 = 0x5EED60;
/// Seed for the per-snapshot annotation wiring.
pub const ANNOTATION_SEED: u64 = 0x5EEDA11;
/// Bonferroni-corrected p-value cutoff applied to enrichment queries.
pub const ENRICH_MAX_P: f64 = 0.05;

/// Build the GO DAG every snapshot of one engine shares (cloned per
/// snapshot; generation is seeded and deterministic).
pub fn serving_dag() -> GoDag {
    GoDag::generate(GO_LEVELS, GO_WIDTH, GO_EXTRA_PARENT_P, DAG_SEED)
}

/// One immutable, fully-indexed view of the network at a window
/// boundary. Every field is resident: queries touch no disk and take no
/// locks.
pub struct ServeSnapshot {
    /// Publication epoch (windows ingested when the snapshot was built).
    epoch: u64,
    /// Samples ingested when the snapshot was built.
    samples: u64,
    /// The retained co-expression network.
    network: Graph,
    /// The maintained chordal subgraph.
    chordal: Graph,
    /// MCODE clusters, strongest first.
    clusters: Vec<Cluster>,
    /// Per-vertex cluster index ([`NO_CLUSTER`] when unclustered).
    membership: Vec<u32>,
    /// Edge-rank view over `network` for the rho table.
    rho_rank: EdgeRankIndex,
    /// Rho per retained edge, indexed by canonical edge rank (all zero
    /// for static artifacts with no correlation state).
    rho: Vec<f64>,
    /// Synthetic GO annotation wired to the snapshot's clusters.
    onto: AnnotatedOntology,
    /// Resident background-frequency index over `onto`.
    enrich: EnrichmentIndex,
    /// Self-checksum over the structural fields, written last during
    /// construction; [`ServeSnapshot::verify_token`] recomputes it, so a
    /// reader holding a half-built snapshot would be detected.
    token: u64,
}

impl ServeSnapshot {
    /// Freeze a snapshot from its parts. `weights` carries the retained
    /// rho values (canonical `(u, v)` pairs); pairs absent from
    /// `network` are ignored, edges without a weight read as rho 0.0.
    pub fn build(
        epoch: u64,
        samples: u64,
        network: Graph,
        chordal: Graph,
        clusters: Vec<Cluster>,
        weights: &[((VertexId, VertexId), f64)],
        dag: &GoDag,
    ) -> Arc<ServeSnapshot> {
        let n = network.n();
        let membership = membership_index(&clusters, n);
        let rho_rank = EdgeRankIndex::new(&network);
        let mut rho = vec![0.0f64; rho_rank.edge_count()];
        for &((u, v), w) in weights {
            if let Some(r) = rho_rank.rank(&network, u, v) {
                rho[r] = w;
            }
        }
        let modules: Vec<Vec<VertexId>> = clusters.iter().map(|c| c.vertices.clone()).collect();
        let onto = AnnotatedOntology::synthetic(
            n,
            &modules,
            dag.clone(),
            MODULE_TERM_DEPTH,
            NOISE_TERMS,
            ANNOTATION_SEED,
        );
        let enrich = EnrichmentIndex::new(&onto);
        let mut snap = ServeSnapshot {
            epoch,
            samples,
            network,
            chordal,
            clusters,
            membership,
            rho_rank,
            rho,
            onto,
            enrich,
            token: 0,
        };
        snap.token = snap.compute_token();
        Arc::new(snap)
    }

    /// Publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Samples ingested when the snapshot was built.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The frozen network.
    pub fn network(&self) -> &Graph {
        &self.network
    }

    /// The frozen chordal subgraph.
    pub fn chordal(&self) -> &Graph {
        &self.chordal
    }

    /// The frozen clusters, strongest first.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// FNV-1a over the structural fields (epoch, counts, membership,
    /// rho bits).
    fn compute_token(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.epoch);
        mix(self.samples);
        mix(self.network.n() as u64);
        mix(self.network.m() as u64);
        mix(self.chordal.m() as u64);
        mix(self.clusters.len() as u64);
        for c in &self.clusters {
            mix(c.vertices.len() as u64);
            mix(c.seed as u64);
        }
        for &m in &self.membership {
            mix(m as u64);
        }
        for &r in &self.rho {
            mix(r.to_bits());
        }
        h
    }

    /// Whether the snapshot's integrity token matches its contents —
    /// the rotation tests use this to prove no reader ever observes a
    /// half-published snapshot.
    pub fn verify_token(&self) -> bool {
        self.token == self.compute_token()
    }

    /// Snapshot-level statistics (the `stats` query body).
    pub fn stats(&self) -> StatsInfo {
        StatsInfo {
            epoch: self.epoch,
            samples: self.samples,
            genes: self.network.n() as u64,
            network_edges: self.network.m() as u64,
            chordal_edges: self.chordal.m() as u64,
            clusters: self.clusters.len() as u64,
        }
    }

    /// Answer one read-only query. A pure function of `(self, req)` —
    /// this is what makes batched responses byte-deterministic under
    /// any worker count. `Ingest` requests answer [`ERR_READ_ONLY`];
    /// the engine intercepts them before batching in writer sessions.
    pub fn answer(&self, req: &Request) -> Response {
        let n = self.network.n() as u32;
        let bad_gene = |g: u32| Response::Error {
            code: ERR_BAD_GENE,
            message: format!("gene {g} out of range for snapshot with {n} genes"),
        };
        match req {
            Request::Neighborhood { gene } => {
                let Some(nbrs) = self.network.try_neighbors(*gene) else {
                    return bad_gene(*gene);
                };
                casbn_obs::counter_add("serve.ops.neighborhood", 1 + nbrs.len() as u64);
                Response::Neighborhood {
                    gene: *gene,
                    neighbors: nbrs.to_vec(),
                }
            }
            Request::ClusterOf { gene } => {
                let Some(&m) = self.membership.get(*gene as usize) else {
                    return bad_gene(*gene);
                };
                casbn_obs::counter_inc("serve.ops.cluster");
                let cluster = (m != NO_CLUSTER).then(|| {
                    let c = &self.clusters[m as usize];
                    ClusterInfo {
                        index: m,
                        size: c.vertices.len() as u32,
                        score: c.score,
                    }
                });
                Response::ClusterOf {
                    gene: *gene,
                    cluster,
                }
            }
            Request::Rho { u, v } => {
                if *u >= n || *v >= n {
                    return bad_gene((*u).max(*v));
                }
                casbn_obs::counter_add("serve.ops.rho", 2);
                match self.rho_rank.rank(&self.network, *u, *v) {
                    Some(r) => Response::Rho {
                        u: *u,
                        v: *v,
                        retained: true,
                        rho: self.rho[r],
                    },
                    None => Response::Rho {
                        u: *u,
                        v: *v,
                        retained: false,
                        rho: 0.0,
                    },
                }
            }
            Request::Enrich { genes } => {
                if let Some(&g) = genes.iter().find(|&&g| g >= n) {
                    return bad_gene(g);
                }
                let hits = self.enrich.enrich(&self.onto, genes, ENRICH_MAX_P);
                casbn_obs::counter_add("serve.ops.enrich", genes.len() as u64 + hits.len() as u64);
                Response::Enrich {
                    terms: hits
                        .into_iter()
                        .map(|h| EnrichHit {
                            term: h.term,
                            in_set: h.in_cluster as u32,
                            in_background: h.in_background as u32,
                            p_value: h.p_value,
                        })
                        .collect(),
                }
            }
            Request::Stats => {
                casbn_obs::counter_inc("serve.ops.stats");
                Response::Stats(self.stats())
            }
            Request::Ingest { .. } => Response::Error {
                code: ERR_READ_ONLY,
                message: "ingest requires a writer session".into(),
            },
        }
    }
}

impl std::fmt::Debug for ServeSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeSnapshot")
            .field("epoch", &self.epoch)
            .field("samples", &self.samples)
            .field("genes", &self.network.n())
            .field("network_edges", &self.network.m())
            .field("clusters", &self.clusters.len())
            .finish()
    }
}

/// The rotation point: readers [`acquire`](SnapshotRegistry::acquire)
/// the current snapshot, the writer [`publish`](SnapshotRegistry::publish)es
/// a new one. Both are `O(1)`; a publish never waits for readers to
/// finish with older snapshots (their `Arc`s keep those alive).
#[derive(Debug)]
pub struct SnapshotRegistry {
    current: RwLock<Arc<ServeSnapshot>>,
    epoch: AtomicU64,
    rotations: AtomicU64,
}

impl SnapshotRegistry {
    /// Registry seeded with an initial snapshot (rotation count 0).
    pub fn new(initial: Arc<ServeSnapshot>) -> Arc<SnapshotRegistry> {
        let epoch = initial.epoch();
        Arc::new(SnapshotRegistry {
            current: RwLock::new(initial),
            epoch: AtomicU64::new(epoch),
            rotations: AtomicU64::new(0),
        })
    }

    /// Clone the current snapshot handle. The returned `Arc` stays
    /// valid across any number of subsequent rotations.
    pub fn acquire(&self) -> Arc<ServeSnapshot> {
        self.current.read().unwrap().clone()
    }

    /// Atomically replace the current snapshot.
    pub fn publish(&self, snap: Arc<ServeSnapshot>) {
        let epoch = snap.epoch();
        *self.current.write().unwrap() = snap;
        self.epoch.store(epoch, Ordering::SeqCst);
        self.rotations.fetch_add(1, Ordering::SeqCst);
        casbn_obs::counter_inc("serve.snapshot_rotations");
    }

    /// Epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Snapshots published since the registry was created.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbn_graph::generators::planted_partition;
    use casbn_mcode::{mcode_cluster, McodeParams};

    fn snap() -> Arc<ServeSnapshot> {
        let (g, _) = planted_partition(60, 4, 10, 0.9, 30, 9);
        let clusters = mcode_cluster(&g, &McodeParams::default());
        let weights: Vec<((VertexId, VertexId), f64)> = g
            .edges()
            .enumerate()
            .map(|(i, e)| (e, 0.5 + (i as f64) * 1e-4))
            .collect();
        ServeSnapshot::build(3, 12, g.clone(), g, clusters, &weights, &serving_dag())
    }

    #[test]
    fn queries_answer_from_resident_indices() {
        let s = snap();
        assert!(s.verify_token());
        // neighborhood matches the graph
        match s.answer(&Request::Neighborhood { gene: 0 }) {
            Response::Neighborhood { gene, neighbors } => {
                assert_eq!(gene, 0);
                assert_eq!(neighbors, s.network().neighbors(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // membership agrees with the cluster list
        for (i, c) in s.clusters().iter().enumerate() {
            let v = c.vertices[0];
            if let Response::ClusterOf {
                cluster: Some(info),
                ..
            } = s.answer(&Request::ClusterOf { gene: v })
            {
                assert!(info.index as usize <= i);
                assert!(s.clusters()[info.index as usize].vertices.contains(&v));
            } else {
                panic!("clustered vertex {v} reported unclustered");
            }
        }
        // rho follows the weights table on edges, zero off edges
        let (u, v) = s.network().edges().next().unwrap();
        match s.answer(&Request::Rho { u: v, v: u }) {
            Response::Rho { retained, rho, .. } => {
                assert!(retained);
                assert_eq!(rho, 0.5);
            }
            other => panic!("unexpected {other:?}"),
        }
        // stats mirror the snapshot
        match s.answer(&Request::Stats) {
            Response::Stats(st) => {
                assert_eq!(st.epoch, 3);
                assert_eq!(st.samples, 12);
                assert_eq!(st.genes, 60);
                assert_eq!(st.network_edges, s.network().m() as u64);
            }
            other => panic!("unexpected {other:?}"),
        }
        // a clustered module is enriched
        let module = s.clusters()[0].vertices.clone();
        match s.answer(&Request::Enrich { genes: module }) {
            Response::Enrich { terms } => assert!(!terms.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_range_genes_are_typed_errors() {
        let s = snap();
        for req in [
            Request::Neighborhood { gene: 60 },
            Request::ClusterOf { gene: 999 },
            Request::Rho { u: 0, v: 60 },
            Request::Enrich {
                genes: vec![0, 1, 60],
            },
        ] {
            match s.answer(&req) {
                Response::Error { code, .. } => assert_eq!(code, ERR_BAD_GENE),
                other => panic!("expected error, got {other:?}"),
            }
        }
        // ingest against a bare snapshot is read-only
        match s.answer(&Request::Ingest { windows: 1 }) {
            Response::Error { code, .. } => assert_eq!(code, ERR_READ_ONLY),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn registry_rotates_without_invalidating_readers() {
        let first = snap();
        let reg = SnapshotRegistry::new(first.clone());
        assert_eq!(reg.epoch(), 3);
        assert_eq!(reg.rotations(), 0);
        let held = reg.acquire();
        let next = ServeSnapshot::build(
            4,
            14,
            first.network().clone(),
            first.chordal().clone(),
            first.clusters().to_vec(),
            &[],
            &serving_dag(),
        );
        reg.publish(next);
        assert_eq!(reg.epoch(), 4);
        assert_eq!(reg.rotations(), 1);
        // the pre-rotation handle still answers consistently
        assert_eq!(held.epoch(), 3);
        assert!(held.verify_token());
        assert_eq!(reg.acquire().epoch(), 4);
    }
}
