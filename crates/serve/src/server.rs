//! Session loops: pipe mode, the scripted client, and the TCP listener.
//!
//! A **session** reads request frames, groups read-only queries into
//! batches of up to [`BATCH_MAX`], and writes
//! response frames in request order. `Ingest` requests are barriers:
//! the pending batch flushes against the pre-ingest snapshot, the
//! engine advances (publishing rotations), and later queries see the
//! new snapshot. EOF and the shutdown flag both **drain**: every
//! buffered query is answered before the session returns, so no
//! accepted request is ever dropped.
//!
//! Pipe mode (`stdin`/`stdout`) is the deterministic test surface: a
//! session over the same input bytes produces the same output bytes for
//! any worker count. The TCP listener serves concurrent read-only
//! sessions against the shared [`SnapshotRegistry`]; only the process
//! that owns the [`ServeEngine`] may ingest.

use crate::batch::{execute_batch, BATCH_MAX};
use crate::engine::ServeEngine;
use crate::protocol::{
    read_frame, ProtocolError, Request, Response, ERR_ENGINE, ERR_PROTOCOL, ERR_READ_ONLY,
};
use crate::snapshot::SnapshotRegistry;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Session tuning knobs.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Worker threads per batch dispatch (1 = sequential).
    pub threads: usize,
    /// Queries buffered before a dispatch (clamped to
    /// 1..=[`BATCH_MAX`]).
    pub batch_max: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            threads: 1,
            batch_max: BATCH_MAX,
        }
    }
}

/// What a finished session did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// Requests decoded and answered.
    pub requests: u64,
    /// Batch dispatches performed.
    pub batches: u64,
    /// FNV-1a checksum over every response frame byte, in order — the
    /// value the pinned-script gates compare.
    pub responses_checksum: u64,
    /// Whether the session ended on the shutdown flag (vs EOF).
    pub drained_on_shutdown: bool,
}

/// FNV-1a offset basis / prime, matching every other checksum in the
/// workspace.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a accumulator.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A writer session: the full protocol including ingest, against the
/// engine's registry. Returns when the input reaches EOF, the shutdown
/// flag is observed, or the request stream turns malformed (a typed
/// error response is sent first); in every case in-flight queries are
/// drained and answered.
pub fn serve_session<R: Read, W: Write>(
    engine: &mut ServeEngine,
    input: R,
    output: W,
    cfg: &SessionConfig,
    shutdown: &AtomicBool,
) -> Result<SessionReport, ProtocolError> {
    session_loop(Some(engine), None, input, output, cfg, shutdown)
}

/// A read-only session against a registry (TCP connections use this):
/// ingest requests answer [`ERR_READ_ONLY`].
pub fn serve_readonly_session<R: Read, W: Write>(
    registry: &SnapshotRegistry,
    input: R,
    output: W,
    cfg: &SessionConfig,
    shutdown: &AtomicBool,
) -> Result<SessionReport, ProtocolError> {
    session_loop(None, Some(registry), input, output, cfg, shutdown)
}

fn session_loop<R: Read, W: Write>(
    mut engine: Option<&mut ServeEngine>,
    registry: Option<&SnapshotRegistry>,
    mut input: R,
    mut output: W,
    cfg: &SessionConfig,
    shutdown: &AtomicBool,
) -> Result<SessionReport, ProtocolError> {
    let batch_cap = cfg.batch_max.clamp(1, BATCH_MAX);
    let mut report = SessionReport::default();
    let mut pending: Vec<Request> = Vec::with_capacity(batch_cap);

    let flush = |pending: &mut Vec<Request>,
                 output: &mut W,
                 report: &mut SessionReport,
                 engine: &mut Option<&mut ServeEngine>|
     -> Result<(), ProtocolError> {
        if pending.is_empty() {
            return Ok(());
        }
        // re-acquire per flush so reader sessions observe rotations the
        // writer published between batches
        let snap = match (engine.as_deref(), registry) {
            (Some(e), _) => e.snapshot(),
            (None, Some(r)) => r.acquire(),
            (None, None) => unreachable!("session needs an engine or a registry"),
        };
        let frames = execute_batch(&snap, pending, cfg.threads);
        report.batches += 1;
        report.requests += pending.len() as u64;
        for f in &frames {
            report.responses_checksum = fnv1a(report.responses_checksum, f);
            output
                .write_all(f)
                .map_err(|e| ProtocolError::Io(e.to_string()))?;
        }
        pending.clear();
        Ok(())
    };

    report.responses_checksum = FNV_OFFSET;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            flush(&mut pending, &mut output, &mut report, &mut engine)?;
            report.drained_on_shutdown = true;
            break;
        }
        let payload = match read_frame(&mut input, shutdown) {
            Ok(Some(p)) => p,
            Ok(None) => {
                flush(&mut pending, &mut output, &mut report, &mut engine)?;
                report.drained_on_shutdown = shutdown.load(Ordering::Relaxed);
                break;
            }
            Err(ProtocolError::Io(e)) => return Err(ProtocolError::Io(e)),
            Err(e) => {
                // drain what was accepted, then report the framing error
                // and end the session: past a malformed frame the stream
                // has no trustworthy boundaries left
                flush(&mut pending, &mut output, &mut report, &mut engine)?;
                let resp = Response::Error {
                    code: ERR_PROTOCOL,
                    message: e.to_string(),
                };
                write_response(&mut output, &mut report, &resp)?;
                break;
            }
        };
        let req = match Request::decode_payload(&payload) {
            Ok(r) => r,
            Err(e) => {
                flush(&mut pending, &mut output, &mut report, &mut engine)?;
                let resp = Response::Error {
                    code: ERR_PROTOCOL,
                    message: e.to_string(),
                };
                write_response(&mut output, &mut report, &resp)?;
                break;
            }
        };
        if let Request::Ingest { windows } = req {
            // barrier: answer everything before the boundary first
            flush(&mut pending, &mut output, &mut report, &mut engine)?;
            let resp = match &mut engine {
                None => Response::Error {
                    code: ERR_READ_ONLY,
                    message: "ingest requires a writer session".into(),
                },
                Some(e) if !e.can_ingest() => Response::Error {
                    code: ERR_READ_ONLY,
                    message: "static artifact source cannot ingest".into(),
                },
                Some(e) => match e.ingest_windows(windows as usize) {
                    Ok((run, epoch)) => Response::Ingest {
                        windows_run: run as u32,
                        epoch,
                    },
                    Err(msg) => Response::Error {
                        code: ERR_ENGINE,
                        message: msg,
                    },
                },
            };
            write_response(&mut output, &mut report, &resp)?;
            continue;
        }
        pending.push(req);
        if pending.len() >= batch_cap {
            flush(&mut pending, &mut output, &mut report, &mut engine)?;
        }
    }
    output
        .flush()
        .map_err(|e| ProtocolError::Io(e.to_string()))?;
    Ok(report)
}

fn write_response<W: Write>(
    output: &mut W,
    report: &mut SessionReport,
    resp: &Response,
) -> Result<(), ProtocolError> {
    let frame = resp.encode_frame();
    report.requests += 1;
    report.responses_checksum = fnv1a(report.responses_checksum, &frame);
    output
        .write_all(&frame)
        .map_err(|e| ProtocolError::Io(e.to_string()))
}

/// Parse a query script: one request per line, `#` comments and blank
/// lines ignored.
///
/// ```text
/// neigh GENE          # gene neighborhood
/// cluster GENE        # cluster membership
/// rho U V             # rho lookup
/// enrich G1 G2 ...    # gene-set enrichment
/// stats               # snapshot statistics
/// ingest N            # advance the stream N windows
/// ```
pub fn parse_script(text: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let cmd = it.next().unwrap();
        let mut nums = || -> Result<Vec<u32>, String> {
            it.by_ref()
                .map(|t| {
                    t.parse::<u32>()
                        .map_err(|_| format!("line {}: bad number {t:?}", lineno + 1))
                })
                .collect()
        };
        let req = match cmd {
            "neigh" => match nums()?.as_slice() {
                [gene] => Request::Neighborhood { gene: *gene },
                _ => return Err(format!("line {}: neigh takes one gene", lineno + 1)),
            },
            "cluster" => match nums()?.as_slice() {
                [gene] => Request::ClusterOf { gene: *gene },
                _ => return Err(format!("line {}: cluster takes one gene", lineno + 1)),
            },
            "rho" => match nums()?.as_slice() {
                [u, v] => Request::Rho { u: *u, v: *v },
                _ => return Err(format!("line {}: rho takes two genes", lineno + 1)),
            },
            "enrich" => Request::Enrich { genes: nums()? },
            "stats" => Request::Stats,
            "ingest" => match nums()?.as_slice() {
                [w] if *w > 0 => Request::Ingest { windows: *w },
                _ => {
                    return Err(format!(
                        "line {}: ingest takes a positive window count",
                        lineno + 1
                    ))
                }
            },
            other => return Err(format!("line {}: unknown command {other:?}", lineno + 1)),
        };
        out.push(req);
    }
    Ok(out)
}

/// Encode a parsed script back into the byte stream a session reads.
pub fn script_to_frames(script: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    for req in script {
        out.extend_from_slice(&req.encode_frame());
    }
    out
}

/// Replay a script through a writer session in memory; returns the
/// report and the raw response bytes. This is the deterministic client
/// the CLI `--script` mode, the CI smoke gate and the determinism tests
/// share.
pub fn run_script(
    engine: &mut ServeEngine,
    script: &[Request],
    cfg: &SessionConfig,
) -> Result<(SessionReport, Vec<u8>), ProtocolError> {
    let input = script_to_frames(script);
    let mut output = Vec::new();
    let shutdown = AtomicBool::new(false);
    let report = serve_session(
        engine,
        std::io::Cursor::new(input),
        &mut output,
        cfg,
        &shutdown,
    )?;
    Ok((report, output))
}

/// Run the TCP listener until `shutdown` fires: each accepted
/// connection is a read-only session on its own thread against the
/// shared registry. Returns the number of sessions served. Connections
/// poll with a read timeout so a blocked session observes shutdown,
/// drains, and exits.
pub fn serve_tcp(
    registry: Arc<SnapshotRegistry>,
    listener: TcpListener,
    cfg: &SessionConfig,
    shutdown: &AtomicBool,
) -> Result<u64, ProtocolError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| ProtocolError::Io(e.to_string()))?;
    let sessions = AtomicU64::new(0);
    std::thread::scope(|scope| {
        loop {
            if shutdown.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    sessions.fetch_add(1, Ordering::Relaxed);
                    let registry = registry.clone();
                    let cfg = cfg.clone();
                    scope.spawn(move || {
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                        let mut out = match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => return,
                        };
                        let _ = serve_readonly_session(&registry, stream, &mut out, &cfg, shutdown);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ProtocolError::Io(e.to_string())),
            }
        }
        Ok(())
    })?;
    Ok(sessions.load(Ordering::Relaxed))
}

/// The process-wide shutdown flag [`install_sigint_handler`] raises.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The process-wide shutdown flag (raised by SIGINT once the handler is
/// installed; hosts may also raise it directly).
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Install a SIGINT handler that raises [`shutdown_flag`]. Sessions
/// observe the flag at frame boundaries (and at read timeouts on TCP),
/// drain their in-flight batches, and return so the host can write the
/// final durable checkpoint. Returns whether the handler installed (a
/// no-op returning `false` on non-Unix platforms).
pub fn install_sigint_handler() -> bool {
    #[cfg(unix)]
    {
        use std::os::raw::{c_int, c_void};
        extern "C" fn on_sigint(_sig: c_int) {
            // async-signal-safe: a relaxed atomic store only
            SHUTDOWN.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: c_int, handler: *const c_void) -> *const c_void;
        }
        const SIGINT: c_int = 2;
        // SAFETY: installing a handler that only performs an atomic
        // store; the previous handler is not restored (daemon lifetime).
        let prev = unsafe { signal(SIGINT, on_sigint as *const c_void) };
        prev != usize::MAX as *const c_void
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbn_expr::DatasetPreset;
    use casbn_stream::{synthesize_replay, StreamConfig};

    fn engine() -> ServeEngine {
        let replay = synthesize_replay(DatasetPreset::Yng, 0.02, Some(8));
        ServeEngine::from_replay(replay, StreamConfig::default())
    }

    #[test]
    fn script_parses_and_round_trips() {
        let text =
            "# demo\n neigh 3\ncluster 4 # inline\nrho 1 2\nenrich 1 2 3\nstats\ningest 2\n\n";
        let script = parse_script(text).unwrap();
        assert_eq!(script.len(), 6);
        assert_eq!(script[0], Request::Neighborhood { gene: 3 });
        assert_eq!(script[5], Request::Ingest { windows: 2 });
        assert!(parse_script("neigh").is_err());
        assert!(parse_script("rho 1").is_err());
        assert!(parse_script("ingest 0").is_err());
        assert!(parse_script("frobnicate 1").is_err());
        assert!(parse_script("neigh -1").is_err());
    }

    #[test]
    fn session_answers_in_request_order_across_batches_and_barriers() {
        let mut eng = engine();
        let script = vec![
            Request::Stats,
            Request::Ingest { windows: 1 },
            Request::Stats,
            Request::Neighborhood { gene: 0 },
            Request::Ingest { windows: 1 },
            Request::Stats,
        ];
        let (report, bytes) = run_script(&mut eng, &script, &SessionConfig::default()).unwrap();
        assert_eq!(report.requests, 6);
        assert!(!report.drained_on_shutdown);
        // decode responses back and check the epochs advance across barriers
        let mut epochs = Vec::new();
        let mut rest: &[u8] = &bytes;
        let mut count = 0;
        while let Some((payload, r)) = crate::protocol::split_frame(rest).unwrap() {
            if let Response::Stats(s) = Response::decode_payload(payload).unwrap() {
                epochs.push(s.epoch);
            }
            rest = r;
            count += 1;
        }
        assert_eq!(count, 6);
        assert_eq!(epochs, vec![0, 1, 2]);
    }

    #[test]
    fn malformed_stream_drains_then_reports_typed_error() {
        let mut eng = engine();
        let mut input = Request::Stats.encode_frame();
        input.extend_from_slice(&[0xFF, 0xFF]); // torn frame header
        let mut output = Vec::new();
        let shutdown = AtomicBool::new(false);
        let report = serve_session(
            &mut eng,
            std::io::Cursor::new(input),
            &mut output,
            &SessionConfig::default(),
            &shutdown,
        )
        .unwrap();
        assert_eq!(report.requests, 2, "drained query + error response");
        let (p1, rest) = crate::protocol::split_frame(&output).unwrap().unwrap();
        assert!(matches!(
            Response::decode_payload(p1).unwrap(),
            Response::Stats(_)
        ));
        let (p2, rest) = crate::protocol::split_frame(rest).unwrap().unwrap();
        match Response::decode_payload(p2).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ERR_PROTOCOL),
            other => panic!("unexpected {other:?}"),
        }
        assert!(crate::protocol::split_frame(rest).unwrap().is_none());
    }

    #[test]
    fn shutdown_flag_drains_pending_queries() {
        let mut eng = engine();
        // a reader that yields one frame, then raises the shutdown flag
        // the moment the session blocks waiting for more input —
        // modelling SIGINT arriving while a query sits buffered
        struct OneFrameThenShutdown {
            data: Vec<u8>,
            pos: usize,
            shutdown: Arc<AtomicBool>,
        }
        impl Read for OneFrameThenShutdown {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos < self.data.len() {
                    let n = buf.len().min(self.data.len() - self.pos);
                    buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    self.shutdown.store(true, Ordering::Relaxed);
                    Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
                }
            }
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let input = OneFrameThenShutdown {
            data: Request::Stats.encode_frame(),
            pos: 0,
            shutdown: shutdown.clone(),
        };
        let mut output = Vec::new();
        let report = serve_session(
            &mut eng,
            input,
            &mut output,
            &SessionConfig::default(),
            &shutdown,
        )
        .unwrap();
        assert!(report.drained_on_shutdown);
        assert_eq!(report.requests, 1, "the buffered query was answered");
    }

    #[test]
    fn tcp_listener_serves_readonly_sessions() {
        use std::io::Write as _;
        let mut eng = engine();
        eng.ingest_windows(2).unwrap();
        let registry = eng.registry();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = AtomicBool::new(false);
        let reg = registry.clone();
        let cfg = SessionConfig::default();
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_tcp(reg, listener, &cfg, &shutdown));
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            let mut frames = Request::Stats.encode_frame();
            frames.extend_from_slice(&Request::Ingest { windows: 1 }.encode_frame());
            conn.write_all(&frames).unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut bytes = Vec::new();
            conn.read_to_end(&mut bytes).unwrap();
            let (p1, rest) = crate::protocol::split_frame(&bytes).unwrap().unwrap();
            match Response::decode_payload(p1).unwrap() {
                Response::Stats(s) => assert_eq!(s.epoch, 2),
                other => panic!("unexpected {other:?}"),
            }
            let (p2, _) = crate::protocol::split_frame(rest).unwrap().unwrap();
            match Response::decode_payload(p2).unwrap() {
                Response::Error { code, .. } => assert_eq!(code, ERR_READ_ONLY),
                other => panic!("unexpected {other:?}"),
            }
            shutdown.store(true, Ordering::Relaxed);
            let served = server.join().unwrap().unwrap();
            assert_eq!(served, 1);
        });
    }
}
