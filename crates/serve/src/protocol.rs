//! Length-prefixed request/response protocol.
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 (LE)  | payload: len bytes        |
//! +----------------+---------------------------+
//! ```
//!
//! The payload is a flat little-endian field sequence built with the
//! `.csbn` store codecs ([`Enc`]/[`Dec`]), so every read is
//! bounds-checked and every length field is validated against the bytes
//! actually present before any allocation is sized from it. Frames are
//! capped at [`MAX_FRAME`]; a request payload decodes to exactly one
//! [`Request`] with no trailing bytes, which makes the encoding
//! canonical: `encode(decode(payload)) == payload` for every accepted
//! payload (the fuzz oracle relies on this bijection).
//!
//! Request payloads start with a `u32` opcode:
//!
//! | opcode | request | body |
//! |---|---|---|
//! | 1 | gene neighborhood | `gene: u32` |
//! | 2 | cluster membership | `gene: u32` |
//! | 3 | rho lookup | `u: u32, v: u32` |
//! | 4 | gene-set enrichment | `count: u32, genes: count × u32` |
//! | 5 | snapshot stats | — |
//! | 6 | ingest windows (writer sessions only) | `windows: u32` |
//!
//! Response payloads start with a `u32` status: `0` (ok) echoes the
//! request opcode and appends the result body; `1` (error) carries a
//! `u32` error code plus a length-prefixed UTF-8 message.

use casbn_store::{Dec, Enc, StoreError};
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};

/// Hard cap on a frame payload, bounding what a hostile peer can make
/// the decoder allocate.
pub const MAX_FRAME: usize = 1 << 20;

/// Cap on the gene count of one enrichment query.
pub const MAX_QUERY_GENES: usize = 4096;

/// Cap on the window count of one ingest request.
pub const MAX_INGEST_WINDOWS: u32 = 1 << 20;

/// Error code: a gene/vertex id in the request is out of range for the
/// current snapshot.
pub const ERR_BAD_GENE: u32 = 1;
/// Error code: the session is read-only and cannot ingest.
pub const ERR_READ_ONLY: u32 = 2;
/// Error code: the request stream itself was malformed (the session
/// terminates after reporting this).
pub const ERR_PROTOCOL: u32 = 3;
/// Error code: the engine rejected an otherwise well-formed request.
pub const ERR_ENGINE: u32 = 4;

/// A typed protocol failure. Decoding never panics and never allocates
/// from an unvalidated length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Fewer bytes than a field or frame needs.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A frame length above [`MAX_FRAME`].
    Oversize {
        /// The declared payload length.
        len: usize,
    },
    /// An opcode outside the request table.
    UnknownOpcode(u32),
    /// A structurally invalid payload (trailing bytes, absurd counts…).
    Malformed(String),
    /// An I/O failure on the underlying transport.
    Io(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            ProtocolError::Oversize { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown request opcode {op}"),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtocolError::Io(what) => write!(f, "transport error: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<StoreError> for ProtocolError {
    fn from(e: StoreError) -> ProtocolError {
        match e {
            StoreError::ShortSection { need, have } => ProtocolError::Truncated { need, have },
            other => ProtocolError::Malformed(other.to_string()),
        }
    }
}

/// One decoded query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Sorted neighbors of `gene` in the current network snapshot.
    Neighborhood {
        /// The queried gene.
        gene: u32,
    },
    /// The MCODE cluster containing `gene`, if any.
    ClusterOf {
        /// The queried gene.
        gene: u32,
    },
    /// Retention flag and rho value of the pair `(u, v)`.
    Rho {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// GO-term enrichment of an arbitrary gene set.
    Enrich {
        /// The queried gene set.
        genes: Vec<u32>,
    },
    /// Snapshot-level statistics.
    Stats,
    /// Advance the stream by up to `windows` windows (writer sessions
    /// only; acts as a batch barrier).
    Ingest {
        /// Windows to ingest.
        windows: u32,
    },
}

impl Request {
    /// Encode to a canonical payload (no length prefix).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Neighborhood { gene } => {
                e.u32(1);
                e.u32(*gene);
            }
            Request::ClusterOf { gene } => {
                e.u32(2);
                e.u32(*gene);
            }
            Request::Rho { u, v } => {
                e.u32(3);
                e.u32(*u);
                e.u32(*v);
            }
            Request::Enrich { genes } => {
                e.u32(4);
                e.u32(genes.len() as u32);
                e.u32s(genes);
            }
            Request::Stats => e.u32(5),
            Request::Ingest { windows } => {
                e.u32(6);
                e.u32(*windows);
            }
        }
        e.into_payload()
    }

    /// Encode to a full frame (length prefix + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }

    /// Decode one request from a frame payload. Strict: every byte of
    /// the payload must belong to the request.
    pub fn decode_payload(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut d = Dec::new(payload);
        let op = d.u32()?;
        let req = match op {
            1 => Request::Neighborhood { gene: d.u32()? },
            2 => Request::ClusterOf { gene: d.u32()? },
            3 => Request::Rho {
                u: d.u32()?,
                v: d.u32()?,
            },
            4 => {
                let count = d.u32()? as usize;
                if count > MAX_QUERY_GENES {
                    return Err(ProtocolError::Malformed(format!(
                        "enrichment gene count {count} exceeds the {MAX_QUERY_GENES} cap"
                    )));
                }
                Request::Enrich {
                    genes: d.u32s(count)?,
                }
            }
            5 => Request::Stats,
            6 => {
                let windows = d.u32()?;
                if windows == 0 || windows > MAX_INGEST_WINDOWS {
                    return Err(ProtocolError::Malformed(format!(
                        "ingest window count {windows} outside 1..={MAX_INGEST_WINDOWS}"
                    )));
                }
                Request::Ingest { windows }
            }
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        d.finish()?;
        Ok(req)
    }
}

/// Cluster summary inside a [`Response::ClusterOf`].
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterInfo {
    /// Index of the cluster in the snapshot's score-ordered list.
    pub index: u32,
    /// Vertices in the cluster.
    pub size: u32,
    /// MCODE score (density × size).
    pub score: f64,
}

/// One enriched term inside a [`Response::Enrich`].
#[derive(Clone, Debug, PartialEq)]
pub struct EnrichHit {
    /// The GO-like term id.
    pub term: u32,
    /// Query genes annotated with the term.
    pub in_set: u32,
    /// Background genes annotated with the term.
    pub in_background: u32,
    /// Bonferroni-corrected hypergeometric tail p-value.
    pub p_value: f64,
}

/// Snapshot-level statistics inside a [`Response::Stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsInfo {
    /// Snapshot epoch (windows published).
    pub epoch: u64,
    /// Samples ingested into the snapshot.
    pub samples: u64,
    /// Gene (vertex) count.
    pub genes: u64,
    /// Live network edges.
    pub network_edges: u64,
    /// Maintained chordal-subgraph edges.
    pub chordal_edges: u64,
    /// MCODE clusters in the snapshot.
    pub clusters: u64,
}

/// One decoded response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Sorted neighbors of the queried gene.
    Neighborhood {
        /// The queried gene.
        gene: u32,
        /// Its sorted neighbors in the network snapshot.
        neighbors: Vec<u32>,
    },
    /// Cluster membership of the queried gene.
    ClusterOf {
        /// The queried gene.
        gene: u32,
        /// The containing cluster, or `None` when unclustered.
        cluster: Option<ClusterInfo>,
    },
    /// Rho lookup result.
    Rho {
        /// First endpoint (as queried).
        u: u32,
        /// Second endpoint (as queried).
        v: u32,
        /// Whether the pair is a retained network edge.
        retained: bool,
        /// The rho value (0.0 when not retained or unknown).
        rho: f64,
    },
    /// Enrichment hits, most significant first.
    Enrich {
        /// Enriched terms.
        terms: Vec<EnrichHit>,
    },
    /// Snapshot statistics.
    Stats(StatsInfo),
    /// Ingest acknowledgement.
    Ingest {
        /// Windows actually ingested (may be fewer than requested when
        /// the replay is exhausted).
        windows_run: u32,
        /// Snapshot epoch after ingesting.
        epoch: u64,
    },
    /// A typed failure (`ERR_*` codes).
    Error {
        /// One of the `ERR_*` constants.
        code: u32,
        /// Deterministic human-readable description.
        message: String,
    },
}

impl Response {
    /// Encode to a canonical payload (no length prefix).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Response::Error { code, message } => {
                e.u32(1);
                e.u32(*code);
                e.u32(message.len() as u32);
                let mut p = e.into_payload();
                p.extend_from_slice(message.as_bytes());
                return p;
            }
            Response::Neighborhood { gene, neighbors } => {
                e.u32(0);
                e.u32(1);
                e.u32(*gene);
                e.u32(neighbors.len() as u32);
                e.u32s(neighbors);
            }
            Response::ClusterOf { gene, cluster } => {
                e.u32(0);
                e.u32(2);
                e.u32(*gene);
                match cluster {
                    None => e.u32(0),
                    Some(c) => {
                        e.u32(1);
                        e.u32(c.index);
                        e.u32(c.size);
                        e.f64(c.score);
                    }
                }
            }
            Response::Rho {
                u,
                v,
                retained,
                rho,
            } => {
                e.u32(0);
                e.u32(3);
                e.u32(*u);
                e.u32(*v);
                e.u32(u32::from(*retained));
                e.f64(*rho);
            }
            Response::Enrich { terms } => {
                e.u32(0);
                e.u32(4);
                e.u32(terms.len() as u32);
                for t in terms {
                    e.u32(t.term);
                    e.u32(t.in_set);
                    e.u32(t.in_background);
                    e.f64(t.p_value);
                }
            }
            Response::Stats(s) => {
                e.u32(0);
                e.u32(5);
                e.u64(s.epoch);
                e.u64(s.samples);
                e.u64(s.genes);
                e.u64(s.network_edges);
                e.u64(s.chordal_edges);
                e.u64(s.clusters);
            }
            Response::Ingest { windows_run, epoch } => {
                e.u32(0);
                e.u32(6);
                e.u32(*windows_run);
                e.u64(*epoch);
            }
        }
        e.into_payload()
    }

    /// Encode to a full frame (length prefix + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }

    /// Decode one response from a frame payload (the scripted client
    /// uses this to render results; strict like the request decoder).
    pub fn decode_payload(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut d = Dec::new(payload);
        let status = d.u32()?;
        if status == 1 {
            let code = d.u32()?;
            let len = d.u32()? as usize;
            if len > d.remaining() {
                return Err(ProtocolError::Truncated {
                    need: len,
                    have: d.remaining(),
                });
            }
            // message bytes are the payload tail
            let tail = &payload[payload.len() - d.remaining()..];
            let (msg, rest) = tail.split_at(len);
            if !rest.is_empty() {
                return Err(ProtocolError::Malformed(format!(
                    "{} trailing bytes after error message",
                    rest.len()
                )));
            }
            let message = String::from_utf8(msg.to_vec())
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8".into()))?;
            return Ok(Response::Error { code, message });
        }
        if status != 0 {
            return Err(ProtocolError::Malformed(format!(
                "unknown response status {status}"
            )));
        }
        let op = d.u32()?;
        let resp = match op {
            1 => {
                let gene = d.u32()?;
                let count = d.u32()? as usize;
                Response::Neighborhood {
                    gene,
                    neighbors: d.u32s(count)?,
                }
            }
            2 => {
                let gene = d.u32()?;
                let cluster = match d.u32()? {
                    0 => None,
                    1 => Some(ClusterInfo {
                        index: d.u32()?,
                        size: d.u32()?,
                        score: d.f64()?,
                    }),
                    other => {
                        return Err(ProtocolError::Malformed(format!(
                            "cluster presence flag {other} is not 0/1"
                        )))
                    }
                };
                Response::ClusterOf { gene, cluster }
            }
            3 => Response::Rho {
                u: d.u32()?,
                v: d.u32()?,
                retained: d.u32()? != 0,
                rho: d.f64()?,
            },
            4 => {
                let count = d.u32()? as usize;
                if count > MAX_QUERY_GENES {
                    return Err(ProtocolError::Malformed(format!(
                        "enrichment hit count {count} exceeds the {MAX_QUERY_GENES} cap"
                    )));
                }
                let mut terms = Vec::with_capacity(count);
                for _ in 0..count {
                    terms.push(EnrichHit {
                        term: d.u32()?,
                        in_set: d.u32()?,
                        in_background: d.u32()?,
                        p_value: d.f64()?,
                    });
                }
                Response::Enrich { terms }
            }
            5 => Response::Stats(StatsInfo {
                epoch: d.u64()?,
                samples: d.u64()?,
                genes: d.u64()?,
                network_edges: d.u64()?,
                chordal_edges: d.u64()?,
                clusters: d.u64()?,
            }),
            6 => Response::Ingest {
                windows_run: d.u32()?,
                epoch: d.u64()?,
            },
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        d.finish()?;
        Ok(resp)
    }
}

/// Wrap a payload in a frame (length prefix + bytes).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame payload exceeds cap");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A split frame: the payload and the remaining buffer.
pub type SplitFrame<'a> = (&'a [u8], &'a [u8]);

/// Split one frame off the front of `buf`: `Ok(None)` when `buf` is
/// empty (a clean boundary), otherwise the payload and the rest.
pub fn split_frame(buf: &[u8]) -> Result<Option<SplitFrame<'_>>, ProtocolError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() < 4 {
        return Err(ProtocolError::Truncated {
            need: 4,
            have: buf.len(),
        });
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversize { len });
    }
    if buf.len() - 4 < len {
        return Err(ProtocolError::Truncated {
            need: len,
            have: buf.len() - 4,
        });
    }
    let (payload, rest) = buf[4..].split_at(len);
    Ok(Some((payload, rest)))
}

/// Read one frame payload from a transport. `Ok(None)` on a clean EOF
/// at a frame boundary or when `shutdown` is observed between frames;
/// EOF inside a frame is a [`ProtocolError::Truncated`]. Reads that
/// time out (a TCP socket with a read timeout) re-check `shutdown` and
/// keep waiting, which is how a blocked session wakes up to drain.
pub fn read_frame<R: Read>(
    r: &mut R,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; 4];
    match read_full(r, &mut header, shutdown)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(ProtocolError::Truncated { need: 4, have: got }),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversize { len });
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload, shutdown)?;
    if got != len {
        return Err(ProtocolError::Truncated {
            need: len,
            have: got,
        });
    }
    Ok(Some(payload))
}

/// Fill `buf` from `r`, tolerating interrupted and timed-out reads.
/// Returns the bytes actually read (short only at EOF, or when
/// `shutdown` fires before the first byte arrives).
fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> Result<usize, ProtocolError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) => match e.kind() {
                std::io::ErrorKind::Interrupted => {
                    if filled == 0 && shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                }
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    if filled == 0 && shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                }
                _ => return Err(ProtocolError::Io(e.to_string())),
            },
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: Request) {
        let payload = req.encode_payload();
        let back = Request::decode_payload(&payload).unwrap();
        assert_eq!(back, req);
        // canonical: re-encoding reproduces the exact bytes
        assert_eq!(back.encode_payload(), payload);
    }

    #[test]
    fn request_roundtrips_are_canonical() {
        roundtrip(Request::Neighborhood { gene: 0 });
        roundtrip(Request::ClusterOf { gene: u32::MAX });
        roundtrip(Request::Rho { u: 3, v: 9 });
        roundtrip(Request::Enrich { genes: vec![] });
        roundtrip(Request::Enrich {
            genes: vec![5, 1, 5, 2],
        });
        roundtrip(Request::Stats);
        roundtrip(Request::Ingest { windows: 1 });
    }

    #[test]
    fn response_roundtrips() {
        let cases = vec![
            Response::Neighborhood {
                gene: 2,
                neighbors: vec![0, 5, 9],
            },
            Response::ClusterOf {
                gene: 1,
                cluster: None,
            },
            Response::ClusterOf {
                gene: 1,
                cluster: Some(ClusterInfo {
                    index: 0,
                    size: 7,
                    score: 3.5,
                }),
            },
            Response::Rho {
                u: 1,
                v: 2,
                retained: true,
                rho: -0.75,
            },
            Response::Enrich {
                terms: vec![EnrichHit {
                    term: 40,
                    in_set: 5,
                    in_background: 9,
                    p_value: 1e-6,
                }],
            },
            Response::Stats(StatsInfo {
                epoch: 3,
                samples: 6,
                genes: 50,
                network_edges: 120,
                chordal_edges: 80,
                clusters: 4,
            }),
            Response::Ingest {
                windows_run: 2,
                epoch: 5,
            },
            Response::Error {
                code: ERR_BAD_GENE,
                message: "gene 99 out of range".into(),
            },
        ];
        for r in cases {
            let payload = r.encode_payload();
            let back = Response::decode_payload(&payload).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.encode_payload(), payload);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut p = Request::Stats.encode_payload();
        p.push(0);
        assert!(matches!(
            Request::decode_payload(&p),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_fields_are_typed() {
        let p = Request::Rho { u: 1, v: 2 }.encode_payload();
        assert!(matches!(
            Request::decode_payload(&p[..7]),
            Err(ProtocolError::Truncated { .. })
        ));
        assert!(matches!(
            Request::decode_payload(&[]),
            Err(ProtocolError::Truncated { need: 4, have: 0 })
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut e = Enc::new();
        e.u32(77);
        assert_eq!(
            Request::decode_payload(&e.into_payload()),
            Err(ProtocolError::UnknownOpcode(77))
        );
    }

    #[test]
    fn enrich_count_is_bounds_checked() {
        // claims 2^31 genes with an empty body: must fail before allocating
        let mut e = Enc::new();
        e.u32(4);
        e.u32(1 << 31);
        assert!(matches!(
            Request::decode_payload(&e.into_payload()),
            Err(ProtocolError::Malformed(_))
        ));
        // within the cap but longer than the payload: typed truncation
        let mut e = Enc::new();
        e.u32(4);
        e.u32(100);
        assert!(matches!(
            Request::decode_payload(&e.into_payload()),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn ingest_zero_windows_rejected() {
        let mut e = Enc::new();
        e.u32(6);
        e.u32(0);
        assert!(matches!(
            Request::decode_payload(&e.into_payload()),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn frame_splitting() {
        let f1 = Request::Stats.encode_frame();
        let f2 = Request::Neighborhood { gene: 7 }.encode_frame();
        let mut buf = f1.clone();
        buf.extend_from_slice(&f2);
        let (p1, rest) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(p1, &f1[4..]);
        let (p2, rest) = split_frame(rest).unwrap().unwrap();
        assert_eq!(p2, &f2[4..]);
        assert!(split_frame(rest).unwrap().is_none());
        // truncated header and body
        assert!(matches!(
            split_frame(&buf[..2]),
            Err(ProtocolError::Truncated { .. })
        ));
        assert!(matches!(
            split_frame(&f2[..6]),
            Err(ProtocolError::Truncated { .. })
        ));
        // oversize length never allocates
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(matches!(
            split_frame(&huge),
            Err(ProtocolError::Oversize { .. })
        ));
    }

    #[test]
    fn read_frame_from_stream() {
        let shutdown = AtomicBool::new(false);
        let mut buf = Request::Stats.encode_frame();
        buf.extend_from_slice(&Request::Rho { u: 0, v: 1 }.encode_frame());
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, &shutdown).unwrap().unwrap(),
            Request::Stats.encode_payload()
        );
        assert_eq!(
            read_frame(&mut cur, &shutdown).unwrap().unwrap(),
            Request::Rho { u: 0, v: 1 }.encode_payload()
        );
        assert!(read_frame(&mut cur, &shutdown).unwrap().is_none());
        // EOF inside a frame body is typed truncation
        let partial = Request::Stats.encode_frame();
        let mut cur = std::io::Cursor::new(partial[..5].to_vec());
        assert!(matches!(
            read_frame(&mut cur, &shutdown),
            Err(ProtocolError::Truncated { .. })
        ));
    }
}
