//! `.csbn` format-stability gate: the committed golden fixture under
//! `tests/fixtures/golden.csbn` must keep parsing **and** re-encoding
//! byte-for-byte across PRs. Any change to the header layout, section
//! table shape, checksum function, alignment rule or a codec's payload
//! layout trips this suite — which is the prompt to bump
//! `FORMAT_VERSION` instead of silently breaking already-written files.
//!
//! Regenerate deliberately (after a versioned format change) with:
//! `CSBN_REGEN_GOLDEN=1 cargo test --test store_format`.

use casbn::graph::{store as graph_store, Graph};
use casbn::mcode::{store as mcode_store, Cluster};
use casbn::store::{Store, StoreWriter, ENDIAN_TAG, FORMAT_VERSION, MAGIC};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.csbn")
}

/// The golden container: one of each user-facing artifact section,
/// fully deterministic, creator pinned independent of the crate
/// version.
fn golden_bytes() -> Vec<u8> {
    let graph = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (3, 5), (4, 5)]);
    let matrix =
        casbn::expr::ExpressionMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.5, 6.25]);
    let clusters = vec![Cluster {
        vertices: vec![0, 1, 2],
        edges: vec![(0, 1), (0, 2), (1, 2)],
        score: 3.0,
        seed: 0,
    }];
    let mut w = StoreWriter::with_creator("golden-v1");
    graph_store::add_graph(&mut w, 0, &graph);
    casbn::expr::store::add_matrix(&mut w, 0, &matrix);
    mcode_store::add_clusters(&mut w, 0, &clusters);
    w.to_bytes()
}

#[test]
fn golden_fixture_is_byte_stable() {
    let bytes = golden_bytes();
    let path = fixture_path();
    if std::env::var_os("CSBN_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &bytes).expect("write golden fixture");
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "read {} (regenerate with CSBN_REGEN_GOLDEN=1): {e}",
            path.display()
        )
    });
    assert_eq!(
        committed, bytes,
        "the .csbn encoding drifted from the committed golden fixture — \
         if the format change is intentional, bump FORMAT_VERSION and \
         regenerate with CSBN_REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_fixture_header_pins_version_and_endianness() {
    let committed = std::fs::read(fixture_path()).expect("golden fixture present");
    assert_eq!(&committed[..8], &MAGIC, "magic bytes");
    assert_eq!(
        u32::from_le_bytes(committed[8..12].try_into().unwrap()),
        FORMAT_VERSION,
        "format version field"
    );
    assert_eq!(
        u32::from_le_bytes(committed[12..16].try_into().unwrap()),
        ENDIAN_TAG,
        "endianness canary must read back little-endian"
    );
    // the exact wire bytes, spelled out: a byte-swapped writer would
    // produce 0A 0B 0C 0D here instead
    assert_eq!(&committed[12..16], &[0x0D, 0x0C, 0x0B, 0x0A]);
}

#[test]
fn golden_fixture_loads_the_expected_artifacts() {
    let committed = std::fs::read(fixture_path()).expect("golden fixture present");
    let store = Store::parse(&committed).expect("golden fixture parses");
    assert_eq!(store.version(), FORMAT_VERSION);
    assert_eq!(store.creator(), "golden-v1");
    assert_eq!(store.sections().len(), 3);

    let g = graph_store::load_first_graph(&store).unwrap();
    assert_eq!((g.n(), g.m()), (6, 7));
    assert!(g.has_edge(4, 5) && !g.has_edge(0, 5));

    let m = casbn::expr::store::load_first_matrix(&store).unwrap();
    assert_eq!((m.genes(), m.samples()), (2, 3));
    assert_eq!(m.row(1), &[4.0, 5.5, 6.25]);

    let cs = mcode_store::load_clusters(&store, 0).unwrap();
    assert_eq!(cs.len(), 1);
    assert_eq!(cs[0].vertices, vec![0, 1, 2]);
    assert_eq!(cs[0].score, 3.0);
}
