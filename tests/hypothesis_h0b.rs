//! Integration test for hypothesis H0b (paper §III-B): vertex orderings
//! (Natural / High-Degree / Low-Degree / RCM) have minimal impact on the
//! biologically relevant clusters extracted from chordal-filtered
//! networks.

use casbn::analysis::node_overlap;
use casbn::ontology::{AnnotatedOntology, EnrichmentScorer, GoDag};
use casbn::prelude::*;
use casbn::sampling::filter_with_ordering;

fn clusters_for_orderings() -> Vec<(String, Vec<Cluster>, usize)> {
    let preset = DatasetPreset::Yng;
    let ds = preset.build_scaled(0.25);
    let filter = SequentialChordalFilter::new();
    let params = McodeParams::default();
    OrderingKind::paper_set()
        .iter()
        .map(|&kind| {
            let out = filter_with_ordering(&ds.network, kind, &filter, 0);
            let clusters = mcode_cluster(&out.graph, &params);
            (kind.label().to_string(), clusters, out.graph.m())
        })
        .collect()
}

#[test]
fn orderings_produce_similar_subgraph_sizes() {
    let results = clusters_for_orderings();
    let sizes: Vec<usize> = results.iter().map(|(_, _, m)| *m).collect();
    let lo = *sizes.iter().min().unwrap() as f64;
    let hi = *sizes.iter().max().unwrap() as f64;
    assert!(
        lo / hi > 0.85,
        "chordal subgraph sizes vary too much across orderings: {sizes:?}"
    );
}

#[test]
fn orderings_produce_similar_cluster_counts() {
    let results = clusters_for_orderings();
    let counts: Vec<usize> = results.iter().map(|(_, c, _)| c.len()).collect();
    let lo = *counts.iter().min().unwrap() as f64;
    let hi = *counts.iter().max().unwrap() as f64;
    assert!(hi > 0.0, "no clusters at all");
    assert!(
        lo / hi > 0.6,
        "cluster counts vary too much across orderings: {counts:?}"
    );
}

#[test]
fn clusters_agree_across_orderings() {
    // for each cluster under ordering A, its best node overlap with some
    // cluster of ordering B should be high on average
    let results = clusters_for_orderings();
    for (la, ca, _) in &results {
        for (lb, cb, _) in &results {
            if la == lb || ca.is_empty() {
                continue;
            }
            let mean_best: f64 = ca
                .iter()
                .map(|a| cb.iter().map(|b| node_overlap(a, b)).fold(0.0f64, f64::max))
                .sum::<f64>()
                / ca.len() as f64;
            assert!(
                mean_best > 0.6,
                "{la} vs {lb}: mean best overlap {mean_best:.2}"
            );
        }
    }
}

#[test]
fn relevant_biology_is_ordering_invariant() {
    let preset = DatasetPreset::Mid;
    let ds = preset.build_scaled(0.25);
    let dag = GoDag::generate(8, 4, 0.25, preset.seed() ^ 0x60);
    let onto = AnnotatedOntology::synthetic(
        ds.network.n(),
        &ds.modules,
        dag,
        6,
        2,
        preset.seed() ^ 0xA11,
    );
    let scorer = EnrichmentScorer::new(&onto);
    let filter = SequentialChordalFilter::new();
    let params = McodeParams::default();

    let relevant_counts: Vec<usize> = OrderingKind::paper_set()
        .iter()
        .map(|&kind| {
            let out = filter_with_ordering(&ds.network, kind, &filter, 0);
            mcode_cluster(&out.graph, &params)
                .iter()
                .filter(|c| scorer.annotate_cluster(&c.edges).aees >= 3.0)
                .count()
        })
        .collect();
    let lo = *relevant_counts.iter().min().unwrap() as f64;
    let hi = *relevant_counts.iter().max().unwrap() as f64;
    assert!(hi > 0.0, "no relevant clusters under any ordering");
    assert!(
        lo / hi > 0.5,
        "relevant-cluster counts vary too much: {relevant_counts:?}"
    );
}
