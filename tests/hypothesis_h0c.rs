//! Integration test for hypothesis H0c (paper §III-B / §IV-C): the
//! parallel implementation — data distribution and processor count — has
//! minimal impact on the produced clusters. Specifically, more processors
//! ⇒ (slightly) fewer retained edges, but the clusters survive.

use casbn::analysis::node_overlap;
use casbn::prelude::*;

fn dataset() -> casbn::expr::Dataset {
    DatasetPreset::Cre.build_scaled(0.15)
}

#[test]
fn more_processors_fewer_edges_under_block_distribution() {
    // the paper's claim "by increasing the number of processors, the
    // resulting filtered network has fewer edges" — true for a
    // locality-oblivious (block over shuffled ids) distribution, where
    // ever more edges become border edges and fail the triangle rule
    let ds = dataset();
    let run = |p: usize| {
        ParallelChordalNoCommFilter::new(p, PartitionKind::Block)
            .filter(&ds.network, 0)
            .graph
            .m()
    };
    let (m1, m64) = (run(1), run(64));
    assert!(m64 <= m1, "edge count grew with processors: {m1} -> {m64}");
}

#[test]
fn more_processors_same_clusters_under_locality_distribution() {
    // H0c's cluster-preservation claim (Fig. 11: 64P ≈ 1P) requires a
    // locality-aware distribution (BFS blocks), which keeps dense modules
    // within partitions — the regime the paper's MPI partitioning works in
    let ds = dataset();
    let params = McodeParams::default();
    let run = |p: usize| {
        let out =
            ParallelChordalNoCommFilter::new(p, PartitionKind::BfsBlock).filter(&ds.network, 0);
        mcode_cluster(&out.graph, &params)
    };
    let c1 = run(1);
    let c64 = run(64);
    assert!(!c1.is_empty() && !c64.is_empty());
    let (lo, hi) = (
        c1.len().min(c64.len()) as f64,
        c1.len().max(c64.len()) as f64,
    );
    assert!(
        lo / hi > 0.8,
        "cluster counts diverge: {} vs {}",
        c1.len(),
        c64.len()
    );
    // and structurally: most 64P clusters match a 1P cluster well
    let mean_best: f64 = c64
        .iter()
        .map(|a| c1.iter().map(|b| node_overlap(a, b)).fold(0.0f64, f64::max))
        .sum::<f64>()
        / c64.len() as f64;
    assert!(
        mean_best > 0.7,
        "64P clusters diverge from 1P: {mean_best:.2}"
    );
}

#[test]
fn locality_aware_distribution_beats_oblivious_at_high_rank_counts() {
    // ablation behind H0c: at 64 ranks, BFS blocks preserve the cluster
    // population; blocks over shuffled ids destroy most of it
    let ds = dataset();
    let params = McodeParams::default();
    let clusters = |kind: PartitionKind| {
        let out = ParallelChordalNoCommFilter::new(64, kind).filter(&ds.network, 0);
        mcode_cluster(&out.graph, &params).len()
    };
    let bfs = clusters(PartitionKind::BfsBlock);
    let block = clusters(PartitionKind::Block);
    assert!(
        bfs > block,
        "BFS blocks ({bfs}) should beat shuffled blocks ({block}) at 64P"
    );
}

#[test]
fn data_distribution_has_minimal_cluster_impact() {
    let ds = dataset();
    let params = McodeParams::default();
    let mut counts = Vec::new();
    for kind in [
        PartitionKind::Block,
        PartitionKind::RoundRobin,
        PartitionKind::BfsBlock,
    ] {
        let out = ParallelChordalNoCommFilter::new(8, kind).filter(&ds.network, 0);
        counts.push(mcode_cluster(&out.graph, &params).len());
    }
    let lo = *counts.iter().min().unwrap() as f64;
    let hi = *counts.iter().max().unwrap() as f64;
    assert!(hi > 0.0);
    assert!(
        lo / hi > 0.5,
        "partition strategy changed cluster counts too much: {counts:?}"
    );
}

#[test]
fn comm_and_nocomm_variants_agree_on_clusters() {
    let ds = dataset();
    let params = McodeParams::default();
    let a = ParallelChordalNoCommFilter::new(8, PartitionKind::Block).filter(&ds.network, 0);
    let b = ParallelChordalCommFilter::new(8, PartitionKind::Block).filter(&ds.network, 0);
    let ca = mcode_cluster(&a.graph, &params);
    let cb = mcode_cluster(&b.graph, &params);
    assert!(!ca.is_empty() && !cb.is_empty());
    let (lo, hi) = (ca.len().min(cb.len()) as f64, ca.len().max(cb.len()) as f64);
    assert!(
        lo / hi > 0.6,
        "variants disagree: {} vs {}",
        ca.len(),
        cb.len()
    );
}

#[test]
fn duplicate_border_edges_within_published_bound() {
    let ds = dataset();
    for p in [4usize, 16, 64] {
        let out = ParallelChordalNoCommFilter::new(p, PartitionKind::Block).filter(&ds.network, 0);
        assert!(
            out.stats.duplicate_border_edges <= out.stats.border_edges,
            "p={p}: duplicates exceed the ≤ b bound"
        );
    }
}

#[test]
fn nocomm_scales_better_than_comm_on_small_network() {
    // the Fig. 10 left-panel phenomenon, as a regression test
    let ds = DatasetPreset::Yng.build_scaled(0.25);
    let p = 32;
    let comm = ParallelChordalCommFilter::new(p, PartitionKind::Block).filter(&ds.network, 0);
    let nocomm = ParallelChordalNoCommFilter::new(p, PartitionKind::Block).filter(&ds.network, 0);
    assert!(
        comm.stats.sim_makespan > nocomm.stats.sim_makespan,
        "with-comm should be slower at {p}P on a small network: {} vs {}",
        comm.stats.sim_makespan,
        nocomm.stats.sim_makespan
    );
}
