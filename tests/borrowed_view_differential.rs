//! Differential suite for the zero-copy read tier: a graph
//! reconstructed from the *borrowed* CSR view of a lazily opened
//! `.csbn` container must be a bit-identical input to every downstream
//! kernel — DSW chordal extraction, MCODE clustering, incremental
//! chordal maintenance and the parallel filters all produce the exact
//! same output (including simulated-cost metrics) whether the graph
//! came through `load_csr` (owned, eager) or `load_csr_view` (borrowed,
//! lazy). A property test additionally pins the writer invariant the
//! borrowed tier depends on: every payload starts on an 8-byte
//! boundary, for any section mix.

use casbn::chordal::{ChordalConfig, SelectionRule};
use casbn::graph::store as graph_store;
use casbn::prelude::*;

/// A deterministic, non-trivial network shared by the kernel tests.
fn network() -> Graph {
    let arr = SyntheticMicroarray::generate(
        &DatasetPreset::Yng.scaled_params(0.05),
        DatasetPreset::Yng.seed(),
    );
    CorrelationNetwork::from_expression(&arr.matrix, DatasetPreset::Yng.network_params()).graph
}

/// Pack `g`, open the container both ways and return the two graphs the
/// kernels consume: (owned-tier reconstruction, borrowed-tier
/// reconstruction). Asserts the CSR arrays are bit-identical first.
fn both_tiers(g: &Graph) -> (Graph, Graph) {
    let mut w = StoreWriter::new();
    graph_store::add_graph(&mut w, 0, g);
    let bytes = w.to_bytes();

    let eager = Store::parse(&bytes).expect("eager parse of a fresh container");
    let owned = graph_store::load_csr(&eager, 0).expect("owned load");

    let lazy = Store::open_lazy(&bytes).expect("lazy open of a fresh container");
    let view = graph_store::load_csr_view(&lazy, 0).expect("borrowed view");
    // on little-endian hosts the view must actually borrow the section
    // bytes; elsewhere the checked fallback copies, which is still a
    // valid (owned) decode of the same payload
    assert!(
        view.is_borrowed() || !cfg!(target_endian = "little"),
        "little-endian hosts must get a true zero-copy view"
    );
    assert_eq!(owned.xadj(), view.xadj(), "xadj must be bit-identical");
    assert_eq!(
        owned.adjncy(),
        view.adjncy(),
        "adjncy must be bit-identical"
    );

    (owned.to_graph(), view.to_graph())
}

#[test]
fn dsw_is_identical_over_owned_and_borrowed_tiers() {
    let g = network();
    let (go, gv) = both_tiers(&g);
    for selection in [SelectionRule::MaxCardinality, SelectionRule::LabelOrder] {
        let cfg = ChordalConfig { selection };
        let a = maximal_chordal_subgraph(&go, cfg);
        let b = maximal_chordal_subgraph(&gv, cfg);
        assert!(a.graph.same_edges(&b.graph), "retained subgraphs differ");
        assert_eq!(a.order, b.order, "elimination orders differ");
        assert_eq!(a.work.ops, b.work.ops, "op counts differ");
    }
}

#[test]
fn mcode_is_identical_over_owned_and_borrowed_tiers() {
    let g = network();
    let (go, gv) = both_tiers(&g);
    let params = McodeParams::default();
    let a = mcode_cluster(&go, &params);
    let b = mcode_cluster(&gv, &params);
    assert_eq!(a.len(), b.len(), "cluster counts differ");
    for (ca, cb) in a.iter().zip(&b) {
        assert_eq!(ca.vertices, cb.vertices);
        assert_eq!(ca.edges, cb.edges);
        assert_eq!(ca.seed, cb.seed);
        // scores come out of the identical float pipeline — require
        // bit equality, not an epsilon
        assert_eq!(ca.score.to_bits(), cb.score.to_bits());
    }
}

#[test]
fn parallel_filters_are_identical_over_owned_and_borrowed_tiers() {
    let g = network();
    let (go, gv) = both_tiers(&g);
    for ranks in [1usize, 4] {
        let a = ParallelChordalNoCommFilter::new(ranks, PartitionKind::Block).filter(&go, 42);
        let b = ParallelChordalNoCommFilter::new(ranks, PartitionKind::Block).filter(&gv, 42);
        assert!(a.graph.same_edges(&b.graph), "p={ranks} outputs differ");
        assert_eq!(
            a.stats.sim_makespan.to_bits(),
            b.stats.sim_makespan.to_bits(),
            "p={ranks} simulated makespans differ"
        );
    }
    let a = SequentialChordalFilter::new().filter(&go, 42);
    let b = SequentialChordalFilter::new().filter(&gv, 42);
    assert!(a.graph.same_edges(&b.graph), "sequential outputs differ");
}

#[test]
fn incremental_chordal_is_identical_over_owned_and_borrowed_tiers() {
    let g = network();
    let (go, gv) = both_tiers(&g);

    // replay each tier's edge set as a chunked insert stream and let the
    // maintainer race them: every per-batch metric must agree
    let drive = |src: &Graph| {
        let edges: Vec<_> = src.edges().collect();
        let mut net = DeltaGraph::new(src.n());
        let mut inc = IncrementalChordal::new(src.n());
        for chunk in edges.chunks(64) {
            let d = EdgeDelta {
                inserts: chunk.to_vec(),
                removes: Vec::new(),
            };
            net.apply(&d);
            inc.apply(&d, &net);
        }
        (
            inc.retained_edges(),
            inc.total_ops(),
            inc.sim_seconds().to_bits(),
            inc.subgraph().clone(),
        )
    };
    let (ra, oa, sa, sub_a) = drive(&go);
    let (rb, ob, sb, sub_b) = drive(&gv);
    assert_eq!(ra, rb, "retained-edge counts differ");
    assert_eq!(oa, ob, "op counts differ");
    assert_eq!(sa, sb, "simulated seconds differ");
    assert!(sub_a.same_edges(&sub_b), "maintained subgraphs differ");
}

mod alignment {
    use casbn::store::{SectionKind, Store, StoreWriter};
    use proptest::prelude::*;

    const KINDS: [SectionKind; 4] = [
        SectionKind::Graph,
        SectionKind::Matrix,
        SectionKind::Clusters,
        SectionKind::DeltaGraph,
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The writer invariant `csr_view_from_payload` leans on: every
        /// payload in a container — whatever the mix of section kinds
        /// and (possibly odd, possibly zero) payload lengths — starts at
        /// an offset divisible by 8, so `&[u8] -> &[u32]` reinterpretation
        /// never sees a misaligned pointer. Holds through an append
        /// generation too.
        #[test]
        fn every_payload_starts_on_an_8_byte_boundary(
            lens in proptest::collection::vec(0usize..200, 1..8),
            kind_picks in proptest::collection::vec(0usize..4, 1..8),
            append_lens in proptest::collection::vec(0usize..200, 0..4),
        ) {
            let mut w = StoreWriter::new();
            for (i, &len) in lens.iter().enumerate() {
                let kind = KINDS[kind_picks[i % kind_picks.len()]];
                w.add(kind, i as u32, vec![0xAB; len]);
            }
            let mut bytes = w.to_bytes();
            if !append_lens.is_empty() {
                let mut a = StoreWriter::new();
                for (i, &len) in append_lens.iter().enumerate() {
                    a.add(SectionKind::Graph, 1000 + i as u32, vec![0xCD; len]);
                }
                bytes = a.append_to(&bytes).expect("append to a fresh container");
            }
            for parsed in [Store::parse(&bytes).unwrap(), Store::open_lazy(&bytes).unwrap()] {
                for (i, e) in parsed.sections().iter().enumerate() {
                    prop_assert_eq!(
                        e.offset % 8,
                        0,
                        "section {} payload offset {} is not 8-aligned",
                        i,
                        e.offset
                    );
                    prop_assert_eq!(parsed.payload_checked(i).unwrap().len(), e.len);
                }
            }
        }
    }
}
