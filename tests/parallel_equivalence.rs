//! Differential tests: the threaded parallel implementations against
//! independently-written sequential references.
//!
//! The parallel Pearson kernel must reproduce the sequential reference
//! **bit-identically**. The threaded chordal filters must produce exactly
//! the graph that a plain single-threaded emulation of the same per-rank
//! algorithm produces (built here on the *global* `Partition::split_edges`
//! path, while production derives edges per rank — two code paths, one
//! answer), across seeds × {block, round-robin} partitions × 1/2/4/8
//! ranks. The no-comm variant additionally respects the paper's ≤ b
//! duplicated-border-edge bound.

use casbn::chordal::{maximal_chordal_subgraph, ChordalConfig};
use casbn::expr::{CorrelationNetwork, NetworkParams, SyntheticMicroarray, SyntheticParams};
use casbn::graph::generators::{gnm, planted_partition};
use casbn::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Pearson: tiled parallel kernel vs sequential reference
// ---------------------------------------------------------------------

#[test]
fn parallel_pearson_equals_sequential_reference_bitwise() {
    for (genes, samples, modules, seed) in [
        (180usize, 10usize, 4usize, 1u64),
        (233, 8, 5, 2),
        (97, 16, 2, 3),
    ] {
        let arr = SyntheticMicroarray::generate(
            &SyntheticParams {
                genes,
                samples,
                modules,
                module_size: 8,
                loading_sq: 0.97,
            },
            seed,
        );
        let params = NetworkParams {
            min_rho: 0.85,
            max_p: 0.01,
        };
        let seq = CorrelationNetwork::from_expression_seq(&arr.matrix, params);
        let par = CorrelationNetwork::from_expression(&arr.matrix, params);
        assert!(seq.graph.m() > 0, "seed {seed}: degenerate reference");
        assert_eq!(par.weights.len(), seq.weights.len(), "seed {seed}");
        for (a, b) in par.weights.iter().zip(&seq.weights) {
            assert_eq!(a.0, b.0, "seed {seed}: edge order drifted");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "seed {seed}: ρ drifted");
        }
        assert!(par.graph.same_edges(&seq.graph));
        // and for deliberately awkward tile widths
        for tile in [1usize, 7, 64] {
            let t = CorrelationNetwork::from_expression_tiled(&arr.matrix, params, tile);
            assert_eq!(t.weights, seq.weights, "seed {seed} tile {tile}");
        }
    }
}

// ---------------------------------------------------------------------
// Shared per-rank machinery of the filter references
// ---------------------------------------------------------------------

/// One rank's local chordal state, computed the plain way.
struct RefLocal {
    verts: Vec<VertexId>,
    g2l: Vec<u32>,
    chordal: Graph,
}

impl RefLocal {
    fn compute(n: usize, part: &Partition, internal: &[(u32, u32)], rank: u32) -> RefLocal {
        let verts = part.vertices_of(rank);
        let mut g2l = vec![u32::MAX; n];
        for (i, &v) in verts.iter().enumerate() {
            g2l[v as usize] = i as u32;
        }
        let mut local = Graph::new(verts.len());
        for &(u, v) in internal {
            local.add_edge(g2l[u as usize], g2l[v as usize]);
        }
        let r = maximal_chordal_subgraph(&local, ChordalConfig::default());
        RefLocal {
            verts,
            g2l,
            chordal: r.graph,
        }
    }

    fn has_chordal_edge(&self, a: VertexId, b: VertexId) -> bool {
        let (la, lb) = (self.g2l[a as usize], self.g2l[b as usize]);
        la != u32::MAX && lb != u32::MAX && self.chordal.has_edge(la, lb)
    }

    fn global_edges(&self) -> Vec<(u32, u32)> {
        self.chordal
            .edges()
            .map(|(u, v)| (self.verts[u as usize], self.verts[v as usize]))
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect()
    }
}

/// Group canonical border edges by their foreign endpoint w.r.t. `rank`;
/// insertion follows the given edge order (canonical ⇒ locals ascending).
fn group_by_foreign(
    border: &[(u32, u32)],
    part: &Partition,
    rank: u32,
) -> BTreeMap<VertexId, Vec<VertexId>> {
    let mut map: BTreeMap<VertexId, Vec<VertexId>> = BTreeMap::new();
    for &(u, v) in border {
        let (local, foreign) = if part.part(u) == rank { (u, v) } else { (v, u) };
        map.entry(foreign).or_default().push(local);
    }
    map
}

fn assemble_ref(n: usize, mut edges: Vec<(u32, u32)>) -> (Graph, usize) {
    edges.sort_unstable();
    let before = edges.len();
    edges.dedup();
    (Graph::from_edges(n, &edges), before - edges.len())
}

// ---------------------------------------------------------------------
// No-comm filter: threaded execution vs sequential emulation
// ---------------------------------------------------------------------

/// Single-threaded emulation of the communication-free algorithm, built
/// on the global `split_edges` view.
fn reference_nocomm(g: &Graph, p: usize, kind: PartitionKind) -> (Graph, usize, usize) {
    let part = Partition::new(g, p, kind);
    let (internal, border) = part.split_edges(g);
    let n = g.n();
    let mut all: Vec<(u32, u32)> = Vec::new();
    for rank in 0..p as u32 {
        let local = RefLocal::compute(n, &part, &internal[rank as usize], rank);
        all.extend(local.global_edges());
        for (f, locs) in group_by_foreign(&border.per_part[rank as usize], &part, rank) {
            for i in 0..locs.len() {
                for j in (i + 1)..locs.len() {
                    if local.has_chordal_edge(locs[i], locs[j]) {
                        all.push((f.min(locs[i]), f.max(locs[i])));
                        all.push((f.min(locs[j]), f.max(locs[j])));
                    }
                }
            }
        }
    }
    // the double-push above can duplicate within a rank; canonicalise the
    // per-rank contribution the same way production does (set semantics)
    let (graph, _) = assemble_ref(n, all);
    (graph, border.all.len(), n)
}

#[test]
fn nocomm_threaded_matches_sequential_emulation() {
    let graphs = [
        gnm(160, 480, 5),
        gnm(200, 800, 11),
        planted_partition(240, 6, 10, 0.9, 150, 7).0,
    ];
    for (gi, g) in graphs.iter().enumerate() {
        for kind in [PartitionKind::Block, PartitionKind::RoundRobin] {
            for p in [1usize, 2, 4, 8] {
                let out = ParallelChordalNoCommFilter::new(p, kind).filter(g, 0);
                let (want, border, _) = reference_nocomm(g, p, kind);
                assert!(
                    out.graph.same_edges(&want),
                    "g{gi} {kind:?} p={p}: threaded no-comm diverged from reference"
                );
                assert_eq!(out.stats.border_edges, border, "g{gi} {kind:?} p={p}");
                // paper bound: ≤ b duplicated border edges
                assert!(
                    out.stats.duplicate_border_edges <= out.stats.border_edges,
                    "g{gi} {kind:?} p={p}: duplicate bound violated"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Comm filter: threaded execution vs sequential emulation
// ---------------------------------------------------------------------

/// Parity rule of `ParallelChordalCommFilter::sender_of`, restated
/// independently.
fn ref_sender(i: usize, j: usize) -> usize {
    let (lo, hi) = (i.min(j), i.max(j));
    if (lo + hi) % 2 == 0 {
        lo
    } else {
        hi
    }
}

/// Single-threaded emulation of the with-communication algorithm: the
/// sender ships the mutual border edges, the receiver keeps a greedy
/// clique of attachment points per foreign vertex.
fn reference_comm(g: &Graph, p: usize, kind: PartitionKind) -> Graph {
    let part = Partition::new(g, p, kind);
    let (internal, border) = part.split_edges(g);
    let n = g.n();
    let locals: Vec<RefLocal> = (0..p as u32)
        .map(|r| RefLocal::compute(n, &part, &internal[r as usize], r))
        .collect();
    let mut all: Vec<(u32, u32)> = Vec::new();
    for local in &locals {
        all.extend(local.global_edges());
    }
    // mutual border edges per unordered pair, canonical global order
    let mut mutual: BTreeMap<(usize, usize), Vec<(u32, u32)>> = BTreeMap::new();
    for &(u, v) in &border.all {
        let (pu, pv) = (part.part(u) as usize, part.part(v) as usize);
        mutual
            .entry((pu.min(pv), pu.max(pv)))
            .or_default()
            .push((u, v));
    }
    for ((a, b), edges) in &mutual {
        let receiver = if ref_sender(*a, *b) == *a { *b } else { *a };
        let local = &locals[receiver];
        for (f, locs) in group_by_foreign(edges, &part, receiver as u32) {
            let mut acc: Vec<VertexId> = Vec::new();
            for &l in &locs {
                if acc.iter().all(|&x| local.has_chordal_edge(x, l)) {
                    acc.push(l);
                    all.push((f.min(l), f.max(l)));
                }
            }
        }
    }
    assemble_ref(n, all).0
}

#[test]
fn comm_threaded_matches_sequential_emulation() {
    let graphs = [
        gnm(150, 500, 3),
        planted_partition(200, 5, 10, 0.9, 120, 13).0,
    ];
    for (gi, g) in graphs.iter().enumerate() {
        for kind in [PartitionKind::Block, PartitionKind::RoundRobin] {
            for p in [1usize, 2, 4, 8] {
                let out = ParallelChordalCommFilter::new(p, kind).filter(g, 0);
                let want = reference_comm(g, p, kind);
                assert!(
                    out.graph.same_edges(&want),
                    "g{gi} {kind:?} p={p}: threaded comm diverged from reference"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Single-rank parallel == sequential filter; clock consistency
// ---------------------------------------------------------------------

#[test]
fn single_rank_parallel_filters_equal_sequential_filter() {
    for seed in [2u64, 9] {
        let g = gnm(140, 420, seed);
        let seq = SequentialChordalFilter::new().filter(&g, 0);
        for kind in [PartitionKind::Block, PartitionKind::RoundRobin] {
            let nocomm = ParallelChordalNoCommFilter::new(1, kind).filter(&g, 0);
            let comm = ParallelChordalCommFilter::new(1, kind).filter(&g, 0);
            assert!(seq.graph.same_edges(&nocomm.graph), "{kind:?}");
            assert!(seq.graph.same_edges(&comm.graph), "{kind:?}");
            assert_eq!(nocomm.stats.border_edges, 0);
            assert_eq!(nocomm.stats.messages, 0);
        }
    }
}

#[test]
fn simulated_clocks_are_reproducible_across_thread_schedules() {
    // the LogP clock must depend only on the communication/compute
    // pattern, never on OS scheduling — run each config repeatedly
    let g = gnm(220, 700, 17);
    for p in [2usize, 4, 8] {
        let nocomm = ParallelChordalNoCommFilter::new(p, PartitionKind::Block);
        let comm = ParallelChordalCommFilter::new(p, PartitionKind::Block);
        let (n0, c0) = (nocomm.filter(&g, 0), comm.filter(&g, 0));
        for _ in 0..3 {
            let (n1, c1) = (nocomm.filter(&g, 0), comm.filter(&g, 0));
            assert_eq!(n0.stats.sim_times, n1.stats.sim_times, "nocomm p={p}");
            assert_eq!(c0.stats.sim_times, c1.stats.sim_times, "comm p={p}");
        }
        assert_eq!(
            n0.stats.sim_makespan,
            n0.stats.sim_times.iter().copied().fold(0.0, f64::max),
            "makespan is the max rank clock"
        );
    }
}

#[test]
fn randomwalk_threaded_is_deterministic_across_ranks_and_partitions() {
    let g = gnm(180, 540, 23);
    for kind in [PartitionKind::Block, PartitionKind::RoundRobin] {
        for p in [1usize, 2, 4, 8] {
            let f = ParallelRandomWalkFilter::new(p, kind);
            let a = f.filter(&g, 42);
            let b = f.filter(&g, 42);
            assert!(a.graph.same_edges(&b.graph), "{kind:?} p={p}");
            assert_eq!(a.stats.sim_times, b.stats.sim_times, "{kind:?} p={p}");
            assert_eq!(a.stats.duplicate_border_edges, 0, "{kind:?} p={p}");
            assert!(a.graph.edges().all(|(u, v)| g.has_edge(u, v)));
        }
    }
}
