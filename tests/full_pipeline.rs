//! Cross-crate smoke test: the complete paper pipeline from raw synthetic
//! expression values to sensitivity/specificity, exercised through the
//! facade crate's public API only.

use casbn::analysis::{classify_quadrants, overlap_table};
use casbn::expr::{CorrelationNetwork, NetworkParams, SyntheticMicroarray, SyntheticParams};
use casbn::ontology::{AnnotatedOntology, EnrichmentScorer, GoDag};
use casbn::prelude::*;
use casbn::sampling::filter_with_ordering;

#[test]
fn expression_to_quadrants_end_to_end() {
    // 1. microarray
    let arr = SyntheticMicroarray::generate(
        &SyntheticParams {
            genes: 800,
            samples: 8,
            modules: 25,
            module_size: 10,
            loading_sq: 0.95,
        },
        99,
    );
    // 2. correlation network (paper thresholds)
    let net = CorrelationNetwork::from_expression(&arr.matrix, NetworkParams::default());
    assert!(net.graph.m() > 100, "network too sparse: {}", net.graph.m());

    // 3. ontology wired to the planted modules
    let dag = GoDag::generate(8, 4, 0.25, 7);
    let onto = AnnotatedOntology::synthetic(800, &arr.modules, dag, 6, 2, 11);
    let scorer = EnrichmentScorer::new(&onto);

    // 4. cluster original
    let params = McodeParams::default();
    let orig = mcode_cluster(&net.graph, &params);
    assert!(!orig.is_empty());

    // 5. filter (parallel, ordered) + cluster
    let filter = ParallelChordalNoCommFilter::new(4, PartitionKind::Block);
    let out = filter_with_ordering(&net.graph, OrderingKind::Rcm, &filter, 5);
    assert!(out.graph.m() < net.graph.m());
    let filt = mcode_cluster(&out.graph, &params);
    assert!(!filt.is_empty());

    // 6. overlap + quadrants
    let table = overlap_table(&orig, &filt);
    let aees: Vec<f64> = table
        .iter()
        .map(|t| scorer.annotate_cluster(&filt[t.filtered_idx].edges).aees)
        .collect();
    let over: Vec<f64> = table.iter().map(|t| t.node_overlap).collect();
    let (_, counts) = classify_quadrants(&aees, &over, 3.0, 0.5);
    let total = counts.tp + counts.fp + counts.fn_ + counts.tn;
    assert_eq!(total, filt.len());
    // true positives must exist: the filter keeps real biology
    assert!(counts.tp > 0, "no true positives: {counts:?}");
}

#[test]
fn quasi_chordal_structure_of_parallel_output() {
    // parallel chordal output = chordal per partition + border triangles;
    // with 1 rank it must be exactly chordal
    let ds = DatasetPreset::Yng.build_scaled(0.2);
    let out1 = ParallelChordalNoCommFilter::new(1, PartitionKind::Block).filter(&ds.network, 0);
    assert!(casbn::chordal::is_chordal(&out1.graph));

    // with many ranks, quasi-chordal: few triangle-free edges relative to
    // a random subgraph of the same size
    let out8 = ParallelChordalNoCommFilter::new(8, PartitionKind::Block).filter(&ds.network, 0);
    let census = casbn::graph::algo::cycle_census(&out8.graph);
    assert!(
        census.independent_cycles < out8.graph.m(),
        "quasi-chordal output should not be cycle-soup"
    );
}

#[test]
fn facade_reexports_compile_and_work() {
    // tiny sanity pass over the prelude surface
    let g = casbn::graph::generators::gnm(50, 100, 1);
    assert!(!casbn::chordal::is_chordal(&g) || g.m() < 50);
    let r = casbn::chordal::maximal_chordal_subgraph(&g, casbn::chordal::ChordalConfig::default());
    assert!(casbn::chordal::is_chordal(&r.graph));
    let out = SequentialChordalFilter::new().filter(&g, 0);
    assert_eq!(out.graph.m(), r.graph.m());
}
