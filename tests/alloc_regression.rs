//! Allocation regression guard for the zero-allocation neighbourhood
//! kernels: after warm-up, a full scratch-threaded DSW extraction and a
//! full scratch-threaded MCODE clustering pass must perform **zero**
//! heap allocations.
//!
//! A counting global allocator wraps `System`; each steady-state pass is
//! measured by diffing the allocation counter around the call. The
//! warm-up passes let every scratch buffer, candidate set, cluster pool
//! and output adjacency list ratchet up to its working capacity (the
//! MCODE cluster pool converges over a couple of passes because the
//! final score sort permutes the pooled buffers).
//!
//! This test binary contains exactly one `#[test]` so no concurrent test
//! can pollute the global counter.

use casbn::chordal::{
    maximal_chordal_subgraph_with, ChordalConfig, ChordalResult, DswScratch, WorkCounter,
};
use casbn::graph::generators::planted_partition;
use casbn::graph::Graph;
use casbn::mcode::{mcode_cluster_into, Cluster, McodeParams, McodeScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System` wrapper that counts every allocation entry point
/// (`alloc`, `alloc_zeroed`, `realloc`) — frees are not counted, so the
/// guard is specifically "no *new* memory in steady state".
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_dsw_and_mcode_allocate_nothing() {
    // a module-structured graph: dense planted cliques + noise, the
    // workload shape both hot paths run in the pipeline
    let (g, _) = planted_partition(400, 6, 12, 0.9, 260, 5);

    // --- DSW ---
    let mut scratch = DswScratch::new(g.n());
    let mut result = ChordalResult {
        graph: Graph::new(g.n()),
        order: Vec::new(),
        work: WorkCounter::default(),
    };
    for _ in 0..3 {
        maximal_chordal_subgraph_with(&g, ChordalConfig::default(), &mut scratch, &mut result);
    }
    let dsw_allocs = allocations_in(|| {
        maximal_chordal_subgraph_with(&g, ChordalConfig::default(), &mut scratch, &mut result);
    });
    assert!(result.graph.m() > 0, "extraction must do real work");
    assert_eq!(
        dsw_allocs, 0,
        "steady-state DSW pass allocated {dsw_allocs} times"
    );

    // --- MCODE ---
    let mut scratch = McodeScratch::new(g.n());
    let mut clusters: Vec<Cluster> = Vec::new();
    let params = McodeParams::default();
    // adaptive warm-up: the final score sort permutes the pooled cluster
    // buffers, so per-slot capacities converge over the orbit of that
    // permutation (bounded by the cluster count) rather than in one pass
    let mut warmups = 0;
    loop {
        let a = allocations_in(|| {
            mcode_cluster_into(&g, &params, &mut scratch, &mut clusters);
        });
        if a == 0 {
            break;
        }
        warmups += 1;
        assert!(
            warmups <= clusters.len() + 2,
            "MCODE pool capacities failed to converge after {warmups} passes"
        );
    }
    let mcode_allocs = allocations_in(|| {
        mcode_cluster_into(&g, &params, &mut scratch, &mut clusters);
    });
    assert!(!clusters.is_empty(), "clustering must do real work");
    assert_eq!(
        mcode_allocs, 0,
        "steady-state MCODE pass allocated {mcode_allocs} times"
    );

    // --- telemetry enabled: instrumented passes reach steady state ---
    // the first enabled passes materialize this thread's shard and
    // insert the &'static str counter keys into its maps (allocates);
    // once every key exists a counter update is a pure HashMap write
    let prior = casbn::obs::set_enabled(true);
    assert!(!prior, "telemetry must be disabled by default");
    let mut dsw_scratch = DswScratch::new(g.n());
    let mut warmups = 0;
    loop {
        let a = allocations_in(|| {
            maximal_chordal_subgraph_with(
                &g,
                ChordalConfig::default(),
                &mut dsw_scratch,
                &mut result,
            );
            mcode_cluster_into(&g, &params, &mut scratch, &mut clusters);
        });
        if a == 0 {
            break;
        }
        warmups += 1;
        assert!(
            warmups <= clusters.len() + 4,
            "instrumented passes failed to reach steady state after {warmups} warm-ups"
        );
    }
    let enabled_allocs = allocations_in(|| {
        maximal_chordal_subgraph_with(&g, ChordalConfig::default(), &mut dsw_scratch, &mut result);
        mcode_cluster_into(&g, &params, &mut scratch, &mut clusters);
    });
    assert_eq!(
        enabled_allocs, 0,
        "enabled-telemetry steady-state pass allocated {enabled_allocs} times"
    );

    // …and switching telemetry back off keeps the paths allocation-free
    casbn::obs::set_enabled(false);
    let disabled_allocs = allocations_in(|| {
        maximal_chordal_subgraph_with(&g, ChordalConfig::default(), &mut dsw_scratch, &mut result);
        mcode_cluster_into(&g, &params, &mut scratch, &mut clusters);
    });
    assert_eq!(
        disabled_allocs, 0,
        "disabled-telemetry steady-state pass allocated {disabled_allocs} times"
    );
}
