//! Determinism contract of the telemetry subsystem: the snapshot's
//! deterministic section must be **bit-identical** across worker thread
//! counts (counters are charged as analytic work totals, merged in
//! sorted key order), identical modulo `store.*` bookkeeping across the
//! owned and borrowed store read tiers, and wall-clock fields must
//! never leak into it.
//!
//! One `#[test]` only: the telemetry registry and the rayon thread
//! override are process-global, so phases run sequentially in a single
//! test body rather than racing from the harness thread pool.

use casbn::expr::{CorrelationNetwork, DatasetPreset, ExpressionMatrix, NetworkParams};
use casbn::graph::store as graph_store;
use casbn::mcode::{mcode_cluster, McodeParams};
use casbn::store::{Store, StoreWriter};
use casbn::stream::{synthesize_replay, StreamConfig, StreamDriver};
use std::collections::BTreeMap;

/// The instrumented pipeline under test: a multi-tile Pearson network
/// build (rayon-parallel phase 1) followed by a windowed stream replay
/// (online correlation, incremental chordal, MCODE, span timers).
fn run_workload(matrix: &ExpressionMatrix) {
    let net = CorrelationNetwork::from_expression_tiled(matrix, NetworkParams::default(), 16);
    assert!(net.graph.m() > 0, "workload must do real work");
    let mut driver = StreamDriver::new(matrix.genes(), StreamConfig::default());
    let mut lo = 0;
    while lo < matrix.samples() {
        let hi = (lo + 2).min(matrix.samples());
        driver.ingest_window(&matrix.columns(lo, hi));
        lo = hi;
    }
    let summary = driver.finish();
    assert!(!summary.windows.is_empty());
}

/// Counters minus the `store.*` namespace (open/bookkeeping counts
/// legitimately differ between the eager and lazy read tiers).
fn non_store_counters(snap: &casbn::obs::Snapshot) -> BTreeMap<String, u64> {
    snap.counters
        .iter()
        .filter(|(k, _)| !k.starts_with("store."))
        .map(|(k, &v)| (k.clone(), v))
        .collect()
}

#[test]
fn deterministic_snapshot_is_thread_count_and_tier_invariant() {
    let matrix = synthesize_replay(DatasetPreset::Yng, 0.05, Some(12));

    // --- phase 1: bit-identical across 1/2/4/8 worker threads ---
    let mut docs: Vec<(usize, String)> = Vec::new();
    for n in [1usize, 2, 4, 8] {
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
        casbn::obs::reset();
        casbn::obs::set_enabled(true);
        run_workload(&matrix);
        casbn::obs::set_enabled(false);
        docs.push((n, casbn::obs::snapshot().deterministic_json()));
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    let (_, reference) = &docs[0];
    for (n, doc) in &docs[1..] {
        assert_eq!(
            doc, reference,
            "deterministic snapshot diverged at {n} threads"
        );
    }
    for key in [
        "\"expr.tiles\"",
        "\"expr.tile_pairs\"",
        "\"stream.windows\"",
        "\"inc_chordal.batches\"",
        "\"mcode.runs\"",
        "\"stream.window\"", // span aggregate
    ] {
        assert!(reference.contains(key), "snapshot is missing {key}");
    }

    // --- phase 2: wall fields stay out of the deterministic document ---
    casbn::obs::reset();
    casbn::obs::set_enabled(true);
    run_workload(&matrix);
    casbn::obs::set_enabled(false);
    let snap = casbn::obs::snapshot();
    let det = snap.deterministic_json();
    assert!(!det.contains("wall"), "wall fields leaked: {det}");
    assert!(!det.contains("nanos\": ") || det.contains("sim_nanos"));
    let full = snap.to_json();
    assert!(full.contains("\"wall\""), "full document must carry wall");
    assert!(
        snap.spans.get("stream.window").is_some_and(|a| a.count > 0),
        "stream span must aggregate"
    );

    // --- phase 3: owned vs borrowed store tiers agree off `store.*` ---
    let ds = DatasetPreset::Yng.build_scaled(0.05);
    let mut w = StoreWriter::new();
    graph_store::add_graph(&mut w, 0, &ds.network);
    let bytes = w.to_bytes();

    casbn::obs::reset();
    casbn::obs::set_enabled(true);
    let eager_clusters = {
        let store = Store::parse(&bytes).expect("eager parse");
        let g = graph_store::load_first_graph(&store).expect("eager load");
        mcode_cluster(&g, &McodeParams::default()).len()
    };
    let eager = casbn::obs::snapshot();

    casbn::obs::reset();
    let lazy_clusters = {
        let store = Store::open_lazy(&bytes).expect("lazy open");
        let g = graph_store::load_first_graph(&store).expect("lazy load");
        mcode_cluster(&g, &McodeParams::default()).len()
    };
    casbn::obs::set_enabled(false);
    let lazy = casbn::obs::snapshot();

    assert_eq!(eager_clusters, lazy_clusters);
    assert_eq!(
        non_store_counters(&eager),
        non_store_counters(&lazy),
        "work off the store namespace must not depend on the read tier"
    );
    assert_eq!(eager.counters.get("store.open_eager"), Some(&1));
    assert_eq!(eager.counters.get("store.open_lazy"), None);
    assert_eq!(lazy.counters.get("store.open_lazy"), Some(&1));
    assert_eq!(lazy.counters.get("store.open_eager"), None);
    assert!(lazy.counters.contains_key("store.checksum_deferred"));
    // both tiers serve the same graph payload bytes
    assert_eq!(
        eager.counters.get("store.bytes.graph"),
        lazy.counters.get("store.bytes.graph"),
    );

    // --- phase 4: disabled mode records nothing ---
    casbn::obs::reset();
    assert!(!casbn::obs::enabled());
    run_workload(&matrix);
    let off = casbn::obs::snapshot();
    assert!(
        off.counters.is_empty() && off.spans.is_empty() && off.wall_hists.is_empty(),
        "disabled telemetry must record nothing, got {off:?}"
    );
}
