//! Integration test for hypothesis H0a (paper §III-B / §IV-B):
//! chordal-subgraph filters beat the random-walk control at preserving
//! and uncovering dense, biologically meaningful clusters.

use casbn::ontology::{AnnotatedOntology, EnrichmentScorer, GoDag};
use casbn::prelude::*;

fn setup(preset: DatasetPreset, frac: f64) -> (casbn::expr::Dataset, AnnotatedOntology) {
    let ds = preset.build_scaled(frac);
    let dag = GoDag::generate(8, 4, 0.25, preset.seed() ^ 0x60);
    let onto = AnnotatedOntology::synthetic(
        ds.network.n(),
        &ds.modules,
        dag,
        6,
        2,
        preset.seed() ^ 0xA11,
    );
    (ds, onto)
}

#[test]
fn chordal_filter_preserves_clusters_random_walk_destroys_them() {
    let (ds, _onto) = setup(DatasetPreset::Cre, 0.15);
    let params = McodeParams::default();
    let orig = mcode_cluster(&ds.network, &params).len();
    assert!(
        orig >= 10,
        "need a meaningful cluster population, got {orig}"
    );

    let ch = SequentialChordalFilter::new().filter(&ds.network, 0);
    let ch_clusters = mcode_cluster(&ch.graph, &params).len();

    let rw = ParallelRandomWalkFilter::new(1, PartitionKind::Block).filter(&ds.network, 0);
    let rw_clusters = mcode_cluster(&rw.graph, &params).len();

    assert!(
        ch_clusters * 2 >= orig,
        "chordal filter lost too many clusters: {ch_clusters} of {orig}"
    );
    assert!(
        rw_clusters * 4 <= orig.max(4),
        "random walk should find almost nothing: {rw_clusters} of {orig}"
    );
    assert!(
        rw_clusters < ch_clusters,
        "H0a violated: rw {rw_clusters} >= chordal {ch_clusters}"
    );
}

#[test]
fn chordal_filter_retains_more_biologically_relevant_clusters() {
    let (ds, onto) = setup(DatasetPreset::Unt, 0.15);
    let scorer = EnrichmentScorer::new(&onto);
    let params = McodeParams::default();

    let relevant = |g: &Graph| {
        mcode_cluster(g, &params)
            .iter()
            .filter(|c| scorer.annotate_cluster(&c.edges).aees >= 3.0)
            .count()
    };

    let orig_relevant = relevant(&ds.network);
    let ch = SequentialChordalFilter::new().filter(&ds.network, 0);
    let ch_relevant = relevant(&ch.graph);
    let rw = ParallelRandomWalkFilter::new(1, PartitionKind::Block).filter(&ds.network, 0);
    let rw_relevant = relevant(&rw.graph);

    assert!(orig_relevant > 0, "no relevant clusters in original");
    assert!(
        ch_relevant * 2 >= orig_relevant,
        "chordal kept {ch_relevant} of {orig_relevant} relevant clusters"
    );
    assert!(
        rw_relevant * 4 <= orig_relevant.max(4),
        "random walk kept {rw_relevant} relevant clusters of {orig_relevant}"
    );
}

#[test]
fn filtering_uncovers_new_clusters() {
    // the paper's "found" clusters: present only after noise removal
    let (ds, _onto) = setup(DatasetPreset::Cre, 0.2);
    let params = McodeParams::default();
    let orig = mcode_cluster(&ds.network, &params);
    let ch = SequentialChordalFilter::new().filter(&ds.network, 0);
    let filt = mcode_cluster(&ch.graph, &params);
    let (_, found) = casbn::analysis::lost_and_found(&orig, &filt);
    // merged noisy super-clusters in the original split into separate real
    // clusters after filtering, some of which have no original match at
    // the >0 overlap level; at minimum the filtered set must not collapse
    assert!(
        filt.len() + found.len() >= orig.len() / 2,
        "filtered cluster population collapsed: {} vs {}",
        filt.len(),
        orig.len()
    );
}

#[test]
fn noise_estimate_is_nonzero_on_noisy_data() {
    // "the reduction of size … can be used to estimate the amount of
    // noise in the network"
    let (ds, _onto) = setup(DatasetPreset::Yng, 0.2);
    let out = SequentialChordalFilter::new().filter(&ds.network, 0);
    let noise = out.noise_estimate();
    assert!(
        noise > 0.0 && noise < 0.5,
        "noise estimate {noise:.3} outside plausible band"
    );
}
