//! Crasher-regression suite: every committed corpus entry under
//! `tests/fixtures/corpus/<target>/` replays through its fuzzing target
//! with all three invariants holding (typed `Err`, never panic, never
//! over-allocation) — a once-found crasher that resurfaces fails this
//! test long before the CI fuzz-smoke campaign would rediscover it.
//! A short live campaign per target double-checks bit-determinism with
//! the allocation gauge installed.

use casbn_cli::commands::fuzz_argv_check;
use casbn_fuzz::{
    all_targets, replay_corpus, run_target, CountingAlloc, FuzzConfig, DEFAULT_MAX_ALLOC,
};
use std::path::PathBuf;

/// Installed so the engine's per-iteration allocation cap actually
/// bites in this test binary (mirrors the `casbn` binary).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One target's committed corpus, sorted by file name for a
/// deterministic replay order.
fn corpus_entries(target: &str) -> Vec<(String, Vec<u8>)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/corpus")
        .join(target);
    let mut entries = Vec::new();
    if let Ok(rd) = std::fs::read_dir(&dir) {
        for entry in rd.flatten() {
            let path = entry.path();
            if path.is_file() {
                entries.push((
                    entry.file_name().to_string_lossy().into_owned(),
                    std::fs::read(&path).expect("read corpus entry"),
                ));
            }
        }
    }
    entries.sort();
    entries
}

#[test]
fn committed_corpus_replays_clean_on_every_target() {
    let mut total = 0;
    for target in &mut all_targets(fuzz_argv_check) {
        let entries = corpus_entries(target.name());
        assert!(
            !entries.is_empty(),
            "{}: no committed corpus entries",
            target.name()
        );
        total += entries.len();
        let crashes = replay_corpus(target.as_mut(), &entries, DEFAULT_MAX_ALLOC);
        let messages: Vec<&String> = crashes.iter().map(|c| &c.message).collect();
        assert!(crashes.is_empty(), "{}: {messages:?}", target.name());
    }
    assert!(total >= 10, "corpus unexpectedly small: {total} entries");
}

#[test]
fn short_campaigns_are_clean_and_bit_deterministic() {
    let cfg = FuzzConfig {
        iters: 100,
        seed: 7,
        ..Default::default()
    };
    let mut first = all_targets(fuzz_argv_check);
    let mut second = all_targets(fuzz_argv_check);
    for (a, b) in first.iter_mut().zip(second.iter_mut()) {
        let ra = run_target(a.as_mut(), &cfg);
        let rb = run_target(b.as_mut(), &cfg);
        let messages: Vec<&String> = ra.crashes.iter().map(|c| &c.message).collect();
        assert!(ra.crashes.is_empty(), "{}: {messages:?}", ra.target);
        assert_eq!(
            ra.trace_checksum, rb.trace_checksum,
            "{}: same-seed campaigns must produce identical traces",
            ra.target
        );
        assert_eq!((ra.accepted, ra.rejected), (rb.accepted, rb.rejected));
        assert!(
            ra.accepted > 0 && ra.rejected > 0,
            "{}: generators must exercise both outcomes (got {} accepted, {} rejected)",
            ra.target,
            ra.accepted,
            ra.rejected
        );
        assert!(
            ra.peak_alloc > 0,
            "{}: allocation gauge inactive",
            ra.target
        );
    }
}
