//! Property-based tests over the whole filter family: invariants that
//! must hold for *any* input graph and any filter in the workspace.

use casbn::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..40).prop_flat_map(|n| {
        let max_edges = (n * (n - 1) / 2).min(120);
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges)
            .prop_map(move |pairs| Graph::from_edges(n, &pairs))
    })
}

fn all_filters(p: usize) -> Vec<Box<dyn Filter>> {
    vec![
        Box::new(SequentialChordalFilter::new()),
        Box::new(ParallelChordalNoCommFilter::new(p, PartitionKind::Block)),
        Box::new(ParallelChordalNoCommFilter::new(p, PartitionKind::BfsBlock)),
        Box::new(ParallelChordalCommFilter::new(p, PartitionKind::Block)),
        Box::new(ParallelRandomWalkFilter::new(p, PartitionKind::Block)),
        Box::new(ForestFireFilter::default()),
        Box::new(RandomNodeFilter::default()),
        Box::new(RandomEdgeFilter::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_filter_returns_a_subgraph(g in arb_graph(), seed in 0u64..100) {
        for f in all_filters(3) {
            let out = f.filter(&g, seed);
            prop_assert_eq!(out.graph.n(), g.n(), "{} changed vertex count", f.name());
            for (u, v) in out.graph.edges() {
                prop_assert!(g.has_edge(u, v), "{} invented edge ({u},{v})", f.name());
            }
            prop_assert_eq!(out.stats.original_edges, g.m());
            prop_assert_eq!(out.stats.retained_edges, out.graph.m());
            prop_assert!(out.retention() >= 0.0 && out.retention() <= 1.0);
        }
    }

    #[test]
    fn every_filter_is_deterministic(g in arb_graph(), seed in 0u64..100) {
        for f in all_filters(2) {
            let a = f.filter(&g, seed);
            let b = f.filter(&g, seed);
            prop_assert!(a.graph.same_edges(&b.graph), "{} nondeterministic", f.name());
        }
    }

    #[test]
    fn chordal_filters_single_rank_output_is_chordal(g in arb_graph()) {
        let seq = SequentialChordalFilter::new().filter(&g, 0);
        prop_assert!(casbn::chordal::is_chordal(&seq.graph));
        let p1 = ParallelChordalNoCommFilter::new(1, PartitionKind::Block).filter(&g, 0);
        prop_assert!(casbn::chordal::is_chordal(&p1.graph));
        prop_assert!(seq.graph.same_edges(&p1.graph));
    }

    #[test]
    fn duplicate_bound_holds(g in arb_graph(), p in 2usize..6) {
        let out = ParallelChordalNoCommFilter::new(p, PartitionKind::Block).filter(&g, 0);
        prop_assert!(out.stats.duplicate_border_edges <= out.stats.border_edges);
    }

    #[test]
    fn cycle_break_never_disconnects(g in arb_graph()) {
        let out = ParallelChordalNoCommFilter::new(3, PartitionKind::Block).filter(&g, 0);
        let part = Partition::new(&g, 3, PartitionKind::Block);
        let border: Vec<(u32, u32)> = out
            .graph
            .edges()
            .filter(|&(u, v)| part.is_border(u, v))
            .collect();
        let (fixed, report) = casbn::sampling::break_cycles(&out.graph, &border);
        let (_, before) = casbn::graph::algo::connected_components(&out.graph);
        let (_, after) = casbn::graph::algo::connected_components(&fixed);
        prop_assert_eq!(before, after);
        prop_assert!(report.triangle_free_after <= report.triangle_free_before);
    }

    #[test]
    fn ordering_pipeline_preserves_subgraph_property(g in arb_graph(), seed in 0u64..50) {
        let f = SequentialChordalFilter::new();
        for kind in OrderingKind::paper_set() {
            let out = casbn::sampling::filter_with_ordering(&g, kind, &f, seed);
            for (u, v) in out.graph.edges() {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn threaded_filters_subgraph_for_any_thread_count(
        g in arb_graph(),
        p in 1usize..9,
        seed in 0u64..50,
    ) {
        // the rank count is the OS thread count of the real execution —
        // draw it, and require the subgraph + determinism invariants to
        // hold regardless
        let filters: Vec<Box<dyn Filter>> = vec![
            Box::new(ParallelChordalNoCommFilter::new(p, PartitionKind::Block)),
            Box::new(ParallelChordalNoCommFilter::new(p, PartitionKind::RoundRobin)),
            Box::new(ParallelChordalCommFilter::new(p, PartitionKind::Block)),
            Box::new(ParallelRandomWalkFilter::new(p, PartitionKind::RoundRobin)),
        ];
        for f in filters {
            let out = f.filter(&g, seed);
            prop_assert_eq!(out.graph.n(), g.n(), "{} changed vertex count", f.name());
            for (u, v) in out.graph.edges() {
                prop_assert!(g.has_edge(u, v), "{} invented edge ({u},{v})", f.name());
            }
            prop_assert!(
                out.stats.duplicate_border_edges <= out.stats.border_edges,
                "{} violated the ≤ b duplicate bound", f.name()
            );
            let again = f.filter(&g, seed);
            prop_assert!(out.graph.same_edges(&again.graph), "{} nondeterministic", f.name());
            prop_assert_eq!(out.stats.sim_times, again.stats.sim_times,
                "{} has schedule-dependent clocks", f.name());
        }
    }

    #[test]
    fn threaded_single_rank_chordal_stays_chordal(g in arb_graph(), kind_ix in 0usize..3) {
        // "DSW output is chordal" through the threaded path: with one
        // rank there are no border edges, so the no-comm output is the
        // rank's DSW result itself — for every partition strategy
        let kind = [PartitionKind::Block, PartitionKind::RoundRobin, PartitionKind::BfsBlock][kind_ix];
        let out = ParallelChordalNoCommFilter::new(1, kind).filter(&g, 0);
        prop_assert!(casbn::chordal::is_chordal(&out.graph));
    }
}

/// Empty-graph and single-vertex inputs must flow through every filter
/// at every rank count without panicking (regression tests for the
/// out-of-range `neighbors` panic class).
#[test]
fn degenerate_inputs_through_every_filter() {
    let degenerate = [
        Graph::new(0),
        Graph::new(1),
        Graph::from_edges(2, &[(0, 1)]),
    ];
    for g in &degenerate {
        for p in [1usize, 2, 4] {
            for f in all_filters(p) {
                let out = f.filter(g, 1);
                assert_eq!(out.graph.n(), g.n(), "{} changed vertex count", f.name());
                assert!(out.graph.m() <= g.m(), "{} invented edges", f.name());
                for (u, v) in out.graph.edges() {
                    assert!(g.has_edge(u, v), "{} invented edge ({u},{v})", f.name());
                }
                assert_eq!(out.stats.original_edges, g.m());
            }
        }
    }
}
